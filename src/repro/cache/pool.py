"""The globally coherent, pooled controller cache (§2.2, §6.1, §6.3).

Every controller blade contributes its cache memory to one cluster-wide
pool: "the controller blades would use the cache on all the controller
blades as a single, coherent, distributed pool of cache".  Any blade can
serve any block; a miss in the local cache is first sought in a *peer*
cache (a fast interconnect transfer) before falling back to disk.  Writes
are absorbed write-back with N-way replication across blade caches, pinned
"only long enough for the data to be asynchronously written to disk".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..faults.retry import NO_RETRY, RetryPolicy, retry_call
from ..hardware.blade import ControllerBlade
from ..integrity.repair import RepairRequest
from ..obs.telemetry import ComponentHealth, HealthState
from ..obs.tracer import NULL_SPAN
from ..sim.events import Event
from ..sim.faults import (FAULT_EXCEPTIONS, SimulatedFault, TransientIOError,
                          find_corruption, is_fault)
from ..sim.link import FairShareLink
from ..sim.resources import Store
from ..sim.stats import MetricSet
from ..sim.units import gbps, us
from .block_cache import BlockCache, BlockKey, BlockState
from .coherence import Directory

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability
    from ..obs.telemetry import ManagementPlane
    from ..sim.engine import Simulator

#: Effective memory-copy bandwidth for a cache hit (controller DRAM).
_CACHE_COPY_RATE = 3.2e9

BackingRead = Callable[[BlockKey, int], Event]
BackingWrite = Callable[[BlockKey, int], Event]


class ReplicationError(SimulatedFault):
    """Not enough live blades to satisfy the requested replica count.

    A :class:`~repro.sim.faults.SimulatedFault`: it only arises when
    injected blade failures shrink the pool, so retry/degraded-mode
    handling may catch it.
    """


class CacheCluster:
    """Coherent pooled cache over a set of controller blades.

    ``backing_read`` / ``backing_write`` connect the pool to the layer
    below (RAID arrays via the virtualization layer): both take
    ``(key, nbytes)`` and return a completion event.
    """

    def __init__(self, sim: "Simulator", blades: list[ControllerBlade],
                 backing_read: BackingRead, backing_write: BackingWrite,
                 block_size: int = 64 * 1024,
                 replication: int = 2,
                 interconnect_bandwidth: float | None = None,
                 interconnect_latency: float = us(25),
                 retry_policy: RetryPolicy = NO_RETRY) -> None:
        if not blades:
            raise ValueError("cache cluster needs at least one blade")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.sim = sim
        self.blades = {b.blade_id: b for b in blades}
        self.block_size = block_size
        self.replication = replication
        self.backing_read = backing_read
        self.backing_write = backing_write
        self.caches: dict[int, BlockCache] = {
            b.blade_id: BlockCache(max(1, b.cache_bytes // block_size),
                                   name=f"{b.name}.cache")
            for b in blades
        }
        self.directory = Directory()
        if interconnect_bandwidth is None:
            # Each blade contributes a couple of Gb/s of mesh capacity.
            interconnect_bandwidth = gbps(4) * len(blades)
        self.interconnect = FairShareLink(sim, interconnect_bandwidth,
                                          interconnect_latency,
                                          name="intercluster")
        self.metrics = MetricSet(sim)
        # Hot-path precomputation: the hit service time never changes, and
        # resolving counters by name per lookup is a dict probe + branch we
        # can pay once here instead of per I/O.
        self._hit_delay = block_size / _CACHE_COPY_RATE + us(5)
        self._ctr_local_hit = self.metrics.counter("read.local_hit")
        self._ctr_remote_hit = self.metrics.counter("read.remote_hit")
        self._ctr_miss = self.metrics.counter("read.miss")
        self.lost_dirty_blocks: list[BlockKey] = []
        #: dirty keys awaiting destage; destagers block on the store, so an
        #: idle system generates no events and unbounded runs terminate.
        self._dirty_queue = Store(sim)
        self._dirty_pending: set[BlockKey] = set()
        self._destager_running = False
        #: Recovery policy for backing-store I/O (miss fills, destages).
        #: The NO_RETRY default reproduces pre-framework behavior exactly.
        self.retry_policy = retry_policy
        #: Injected transient-I/O faults: the next N backing reads/writes
        #: fail with TransientIOError (the fault injector's hook).
        self._forced_read_faults = 0
        self._forced_write_faults = 0
        #: End-to-end integrity (None = disabled, the default: read/write
        #: paths then pay only ``is not None`` tests and no extra events).
        #: Set by the system wiring together with ``repair_chain``, the
        #: escalation used when a backing read fails verification.
        self.integrity = None
        self.repair_chain = None
        #: Armed in-flight corruption: the next N interconnect fills
        #: deliver a damaged payload (the WIRE_CORRUPT fault hook); the
        #: fill digest detects it and one retransmit makes it whole.
        self._wire_corrupt_pending = 0

    # -- helpers -----------------------------------------------------------------

    def _hit_time(self) -> float:
        return self._hit_delay

    def _obs(self) -> "Observability | None":
        """The sim's observability bundle, wiring the coherence directory's
        observer into the event log on first use.

        Hot paths read ``self.sim.obs`` directly and only fall through to
        this method when observability is on, keeping the disabled path to
        a single attribute test.
        """
        obs = self.sim.obs
        if obs is not None and self.directory.observer is None:
            log = obs.log

            def watch(kind: str, key: BlockKey, detail) -> None:
                if kind == "invalidate":
                    log.debug("cache.coherence", "invalidate",
                              key=str(key), victims=len(detail))
                else:
                    log.debug("cache.coherence", kind,
                              key=str(key), source=detail)

            self.directory.observer = watch
        return obs

    def inject_backing_faults(self, count: int, op: str = "read") -> None:
        """Force the next ``count`` backing reads (or writes) to fail with
        :class:`~repro.sim.faults.TransientIOError` — the fault injector's
        transient-I/O hook."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if op == "read":
            self._forced_read_faults += count
        elif op == "write":
            self._forced_write_faults += count
        else:
            raise ValueError(f"op must be read/write, got {op!r}")

    def corrupt_next_fill(self, count: int) -> None:
        """Arm in-flight corruption on the next ``count`` interconnect
        fills (remote-hit transfers) — the WIRE_CORRUPT fault hook."""
        if self.integrity is None:
            raise RuntimeError("enable integrity before arming wire faults")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._wire_corrupt_pending += count

    def corrupt_cached(self, blade_id: int, key: BlockKey,
                       kind: str = "bitrot") -> bool:
        """Corrupt the resident copy of ``key`` on one blade (in-memory
        bitrot).  Detection happens at the read/destage verification
        points; returns False when the block is not resident there."""
        if self.integrity is None:
            raise RuntimeError(
                "enable integrity before injecting cache corruption")
        if blade_id not in self.caches or not self.caches[blade_id].poison(key):
            return False
        return self.integrity.corrupt("cache", (blade_id, key), 0, kind)

    def _note_cache_repair(self, tier: str, started: float) -> None:
        self.metrics.counter(f"integrity.cache_repaired.{tier}").incr()
        self.metrics.tally("integrity.repair_latency").record(
            self.sim.now - started)

    def _repair_cached(self, blade_id: int, key: BlockKey):
        """A local hit failed verification: fetch a good copy in place.

        Tier order mirrors the escalation chain at cache scope — a clean
        peer copy over the interconnect, else a disk refill.  Dirty data
        with no clean replica anywhere has no good copy left: counted
        unrepairable (the corrupt bytes keep serving, loudly accounted).
        Returns the repairing tier name.
        """
        integ = self.integrity
        cache = self.caches[blade_id]
        t0 = self.sim.now
        integ.note_detected("cache", (blade_id, key))
        self.metrics.counter("integrity.cache_detected").incr()
        entry_dir = self.directory.entry(key)
        source = None
        if entry_dir is not None:
            for bid in sorted(entry_dir.holders()):
                if bid != blade_id and bid in self.caches \
                        and self.blades[bid].is_up \
                        and self.caches[bid].entry(key) is not None \
                        and not self.caches[bid].is_poisoned(key):
                    source = bid
                    break
        if source is not None:
            yield self.interconnect.transfer(self.block_size)
            cache.unpoison(key)
            integ.clear("cache", (blade_id, key))
            integ.note_repaired("cache", (blade_id, key))
            self._note_cache_repair("replica", t0)
            return "replica"
        entry = cache.entry(key)
        if entry is not None and entry.state is not BlockState.SHARED \
                and entry_dir is not None and entry_dir.dirty:
            integ.note_unrepairable("cache", (blade_id, key))
            cache.unpoison(key)
            self.metrics.counter("integrity.cache_unrepairable").incr()
            return "unrepairable"
        try:
            yield from retry_call(
                self.sim, lambda: self._backing(key, self.block_size, "read"),
                self.retry_policy, component="cache.pool")
        except FAULT_EXCEPTIONS as exc:
            if not is_fault(exc):
                raise
            integ.note_unrepairable("cache", (blade_id, key))
            cache.unpoison(key)
            self.metrics.counter("integrity.cache_unrepairable").incr()
            return "unrepairable"
        cache.unpoison(key)
        integ.clear("cache", (blade_id, key))
        integ.note_repaired("cache", (blade_id, key))
        self._note_cache_repair("disk", t0)
        return "disk"

    def _repair_backing(self, key: BlockKey, corruption):
        """Escalate a backing-read verification miss through the chain,
        then retry the fill.  Returns True when the retried read is clean.
        """
        req = RepairRequest(domain=corruption.domain,
                            address=corruption.address,
                            length=corruption.length, kind=corruption.kind,
                            key=key)
        try:
            yield self.repair_chain.repair(req)
            yield from retry_call(
                self.sim, lambda: self._backing(key, self.block_size, "read"),
                self.retry_policy, component="cache.pool")
        except FAULT_EXCEPTIONS as exc:
            if not is_fault(exc):
                raise
            return False
        self.metrics.counter("integrity.backing_repaired").incr()
        return True

    def _backing(self, key: BlockKey, nbytes: int, op: str) -> Event:
        """One backing-store attempt, honouring injected transient faults."""
        if op == "read":
            if self._forced_read_faults > 0:
                self._forced_read_faults -= 1
                failed = Event(self.sim)
                failed.fail(TransientIOError(
                    f"injected backing read fault on {key}"))
                return failed
            return self.backing_read(key, nbytes)
        if self._forced_write_faults > 0:
            self._forced_write_faults -= 1
            failed = Event(self.sim)
            failed.fail(TransientIOError(
                f"injected backing write fault on {key}"))
            return failed
        return self.backing_write(key, nbytes)

    def live_blades(self) -> list[int]:
        """Blade ids currently UP, in stable order."""
        return sorted(bid for bid, b in self.blades.items() if b.is_up)

    def total_cache_blocks(self) -> int:
        """Pooled capacity grows as blades are added (§2.2)."""
        return sum(self.caches[bid].capacity for bid in self.live_blades())

    def pick_replica_targets(self, origin: int, count: int) -> list[int]:
        """Least-loaded live blades, excluding the origin."""
        candidates = [bid for bid in self.live_blades() if bid != origin]
        if len(candidates) < count:
            raise ReplicationError(
                f"need {count} replica holders, only {len(candidates)} "
                "peer blades are up")
        candidates.sort(key=lambda bid: (len(self.caches[bid]), bid))
        return candidates[:count]

    # -- read path ------------------------------------------------------------------

    def read(self, blade_id: int, key: BlockKey, priority: int = 0,
             parent=None) -> Event:
        """Read one block through ``blade_id``; event value is the source
        tier: ``"local"``, ``"remote"`` or ``"disk"``.  ``parent`` is an
        optional tracing span to nest under (request-following)."""
        done = Event(self.sim)
        if self.sim.obs is None:
            gen = self._read_fast(blade_id, key, priority, done)
        else:
            gen = self._read(blade_id, key, priority, done, parent)
        self.sim.process(gen, name="cache.read")
        return done

    def _read_fast(self, blade_id: int, key: BlockKey, priority: int,
                   done: Event):
        """Untraced read path: same yield sequence as :meth:`_read`, with
        the span plumbing (context managers, NULL_SPAN churn) stripped so
        the observability-off configuration allocates nothing per lookup
        beyond the I/O events themselves."""
        blade = self.blades[blade_id]
        cache = self.caches[blade_id]
        integ = self.integrity
        yield from blade.execute(blade.io_cpu_cost(self.block_size))
        if cache.lookup(key) is not None:
            if integ is not None and cache.is_poisoned(key):
                # Checksum miss on the resident copy: repair in place
                # (clean peer replica, else disk) before serving.
                yield from self._repair_cached(blade_id, key)
            self._ctr_local_hit.incr()
            yield self.sim.timeout(self._hit_delay)
            done.succeed("local")
            return
        actions = self.directory.acquire_shared(blade_id, key)
        source = actions.fetch_from
        if source is not None and source in self.blades \
                and self.blades[source].is_up:
            if integ is not None and self.caches[source].is_poisoned(key):
                # The peer's copy fails its fill digest: refuse to
                # spread the bad bytes; fall through to a disk fill.
                integ.note_detected("cache", (source, key))
                self.metrics.counter("integrity.peer_fill_rejected").incr()
            else:
                self._ctr_remote_hit.incr()
                yield self.interconnect.transfer(self.block_size)
                if integ is not None and self._wire_corrupt_pending > 0:
                    # In-flight damage caught by the transfer digest:
                    # one retransmit makes the fill whole.
                    self._wire_corrupt_pending -= 1
                    integ.wire_event("wire_corrupt", detected=True,
                                     repaired=True)
                    self.metrics.counter("integrity.fill_retransmits").incr()
                    yield self.interconnect.transfer(self.block_size)
                cache.insert(key, BlockState.SHARED, priority, self.sim.now)
                done.succeed("remote")
                return
        self._ctr_miss.incr()
        try:
            yield from retry_call(
                self.sim, lambda: self._backing(key, self.block_size, "read"),
                self.retry_policy, component="cache.pool")
        except FAULT_EXCEPTIONS as exc:
            # Only simulated failures are a miss-fill outcome; a wrapped
            # TypeError/KeyError is a model bug and must crash the run.
            if not is_fault(exc):
                raise
            corruption = (find_corruption(exc)
                          if self.repair_chain is not None else None)
            if corruption is not None:
                repaired = yield from self._repair_backing(key, corruption)
                if repaired:
                    cache.insert(key, BlockState.SHARED, priority,
                                 self.sim.now)
                    done.succeed("disk")
                    return
            self.metrics.counter("read.backing_errors").incr()
            done.fail(exc)
            return
        cache.insert(key, BlockState.SHARED, priority, self.sim.now)
        done.succeed("disk")

    def _latency_series(self, obs: "Observability", op: str, blade_id: int,
                        tier: str):
        """Per-blade/tier latency series (labels follow the SLO layer)."""
        return obs.series.series(f"cache.{op}_latency_s", blade=blade_id,
                                 tier=tier)

    def _read(self, blade_id: int, key: BlockKey, priority: int, done: Event,
              parent=None):
        obs = self._obs() if self.sim.obs is not None else None
        t0 = self.sim.now
        span = (obs.tracer.span("cache.read", parent=parent, blade=blade_id)
                if obs is not None else NULL_SPAN)
        with span:
            blade = self.blades[blade_id]
            cache = self.caches[blade_id]
            integ = self.integrity
            with span.child("blade.cpu"):
                yield from blade.execute(blade.io_cpu_cost(self.block_size))
            if cache.lookup(key) is not None:
                if integ is not None and cache.is_poisoned(key):
                    span.annotate(integrity="repair")
                    with span.child("integrity.repair_cached"):
                        yield from self._repair_cached(blade_id, key)
                self._ctr_local_hit.incr()
                span.annotate(tier="local")
                yield self.sim.timeout(self._hit_time())
                if obs is not None:
                    self._latency_series(obs, "read", blade_id,
                                         "local").record(self.sim.now - t0)
                done.succeed("local")
                return
            actions = self.directory.acquire_shared(blade_id, key)
            source = actions.fetch_from
            if source is not None and source in self.blades \
                    and self.blades[source].is_up:
                if integ is not None and self.caches[source].is_poisoned(key):
                    integ.note_detected("cache", (source, key))
                    self.metrics.counter(
                        "integrity.peer_fill_rejected").incr()
                    span.annotate(integrity="peer_fill_rejected")
                    if obs is not None:
                        obs.log.warning("cache.pool", "peer_fill_rejected",
                                        key=str(key), source=source)
                else:
                    # Peer-cache transfer: far faster than a disk access.
                    self._ctr_remote_hit.incr()
                    span.annotate(tier="remote", source=source)
                    with span.child("cache.peer_fetch", source=source):
                        yield self.interconnect.transfer(self.block_size)
                    if integ is not None and self._wire_corrupt_pending > 0:
                        self._wire_corrupt_pending -= 1
                        integ.wire_event("wire_corrupt", detected=True,
                                         repaired=True)
                        self.metrics.counter(
                            "integrity.fill_retransmits").incr()
                        with span.child("integrity.retransmit"):
                            yield self.interconnect.transfer(self.block_size)
                    cache.insert(key, BlockState.SHARED, priority,
                                 self.sim.now)
                    if obs is not None:
                        self._latency_series(obs, "read", blade_id,
                                             "remote").record(
                                                 self.sim.now - t0)
                    done.succeed("remote")
                    return
            self._ctr_miss.incr()
            span.annotate(tier="disk")
            try:
                with span.child("backing.read"):
                    yield from retry_call(
                        self.sim,
                        lambda: self._backing(key, self.block_size, "read"),
                        self.retry_policy, component="cache.pool")
            except FAULT_EXCEPTIONS as exc:
                if not is_fault(exc):
                    raise  # programming error wrapped in a barrier: crash
                corruption = (find_corruption(exc)
                              if self.repair_chain is not None else None)
                if corruption is not None:
                    with span.child("integrity.repair_backing"):
                        repaired = yield from self._repair_backing(
                            key, corruption)
                    if repaired:
                        cache.insert(key, BlockState.SHARED, priority,
                                     self.sim.now)
                        if obs is not None:
                            self._latency_series(obs, "read", blade_id,
                                                 "disk").record(
                                                     self.sim.now - t0)
                        done.succeed("disk")
                        return
                self.metrics.counter("read.backing_errors").incr()
                if obs is not None:
                    obs.log.error("cache.pool", "backing_read_failed",
                                  key=str(key), blade=blade_id)
                done.fail(exc)
                return
            cache.insert(key, BlockState.SHARED, priority, self.sim.now)
            if obs is not None:
                self._latency_series(obs, "read", blade_id, "disk").record(
                    self.sim.now - t0)
            done.succeed("disk")

    # -- write path ------------------------------------------------------------------

    def write(self, blade_id: int, key: BlockKey,
              replicas: int | None = None, priority: int = 0,
              parent=None) -> Event:
        """Write-back one block through ``blade_id`` with N-way replication.

        The event fires when the data is *safe* (owner + N−1 replicas in
        cache), not when it reaches disk — that's the destager's job.
        ``parent`` is an optional tracing span to nest under.
        """
        done = Event(self.sim)
        self.sim.process(self._write(blade_id, key, replicas, priority, done,
                                     parent),
                         name="cache.write")
        return done

    def _write(self, blade_id: int, key: BlockKey, replicas: int | None,
               priority: int, done: Event, parent=None):
        n = self.replication if replicas is None else replicas
        if n < 1:
            done.fail(ValueError("replicas must be >= 1"))
            return
        obs = self._obs() if self.sim.obs is not None else None
        t0 = self.sim.now
        span = (obs.tracer.span("cache.write", parent=parent,
                                blade=blade_id, replicas=n)
                if obs is not None else NULL_SPAN)
        with span:
            blade = self.blades[blade_id]
            cache = self.caches[blade_id]
            with span.child("blade.cpu"):
                yield from blade.execute(blade.io_cpu_cost(self.block_size))
            actions = self.directory.acquire_exclusive(blade_id, key)
            if actions.invalidate:
                # One round of invalidation messages, in parallel.
                self.metrics.counter("coherence.invalidations").incr(
                    len(actions.invalidate))
                for victim in actions.invalidate:
                    if victim in self.caches:
                        self.caches[victim].drop(key)
                with span.child("coherence.invalidate",
                                victims=len(actions.invalidate)):
                    yield self.sim.timeout(self.interconnect.latency)
            yield self.sim.timeout(self._hit_time())
            cache.insert(key, BlockState.MODIFIED, priority, self.sim.now)
            if n > 1:
                try:
                    targets = self.pick_replica_targets(blade_id, n - 1)
                except ReplicationError as exc:
                    if obs is not None:
                        obs.log.error("cache.pool", "replication_failed",
                                      key=str(key), wanted=n - 1,
                                      live=len(self.live_blades()))
                    done.fail(exc)
                    return
                transfers = [self.interconnect.transfer(self.block_size)
                             for _ in targets]
                with span.child("cache.replicate", targets=len(targets)):
                    yield self.sim.all_of(transfers)
                for target in targets:
                    self.caches[target].insert(key, BlockState.REPLICA,
                                               priority, self.sim.now)
                self.directory.register_replicas(key, set(targets))
                self.metrics.counter("write.replicas_placed").incr(len(targets))
            self._enqueue_dirty(key)
            self.metrics.counter("write.absorbed").incr()
            if obs is not None:
                self._latency_series(obs, "write", blade_id,
                                     "cached").record(self.sim.now - t0)
            done.succeed("cached")

    # -- destage ---------------------------------------------------------------------

    def destage(self, key: BlockKey) -> Event:
        """Push one dirty block to disk and release all pins."""
        done = Event(self.sim)
        self.sim.process(self._destage(key, done), name="cache.destage")
        return done

    def _verify_before_destage(self, key: BlockKey, entry_dir):
        """Destage is the last verification point before corrupt bytes
        would become the durable truth: a poisoned owner copy is repaired
        from a clean pinned replica, or loudly counted unrepairable."""
        integ = self.integrity
        owner = entry_dir.owner
        if owner is None or owner not in self.caches \
                or not self.caches[owner].is_poisoned(key):
            return
        t0 = self.sim.now
        integ.note_detected("cache", (owner, key))
        self.metrics.counter("integrity.cache_detected").incr()
        source = None
        for bid in sorted(entry_dir.replica_holders):
            if bid != owner and bid in self.caches \
                    and self.blades[bid].is_up \
                    and self.caches[bid].entry(key) is not None \
                    and not self.caches[bid].is_poisoned(key):
                source = bid
                break
        if source is not None:
            yield self.interconnect.transfer(self.block_size)
            self.caches[owner].unpoison(key)
            integ.clear("cache", (owner, key))
            integ.note_repaired("cache", (owner, key))
            self._note_cache_repair("replica", t0)
        else:
            # Dirty data with every copy damaged: nothing clean exists
            # anywhere, so the write proceeds (the alternative is losing
            # the block outright) and the loss is accounted.
            integ.note_unrepairable("cache", (owner, key))
            self.caches[owner].unpoison(key)
            self.metrics.counter("integrity.cache_unrepairable").incr()

    def _destage(self, key: BlockKey, done: Event):
        entry = self.directory.entry(key)
        if entry is None or not entry.dirty:
            done.succeed(False)
            return
        if self.integrity is not None:
            yield from self._verify_before_destage(key, entry)
        obs = self._obs() if self.sim.obs is not None else None
        span = (obs.tracer.span("cache.destage")
                if obs is not None else NULL_SPAN)
        try:
            with span, span.child("backing.write"):
                yield from retry_call(
                    self.sim,
                    lambda: self._backing(key, self.block_size, "write"),
                    self.retry_policy, component="cache.pool")
        except FAULT_EXCEPTIONS as exc:
            if not is_fault(exc):
                raise  # a destage bug must not masquerade as a retry
            # Destage target failed (disk rebuild pending): keep the block
            # dirty and pinned; retry on a later pass.
            self.metrics.counter("destage.errors").incr()
            if obs is not None:
                obs.log.warning("cache.pool", "destage_retry", key=str(key))
            self._enqueue_dirty(key)
            done.succeed(False)
            return
        released = self.directory.destaged(key)
        for bid in released:
            if bid in self.caches:
                self.caches[bid].clean(key)
        self.metrics.counter("destage.completed").incr()
        if obs is not None:
            obs.series.series("cache.destage_blocks").incr()
        done.succeed(True)

    def _enqueue_dirty(self, key: BlockKey) -> None:
        if key not in self._dirty_pending:
            self._dirty_pending.add(key)
            self._dirty_queue.put(key)

    def _dequeue_dirty(self, key: BlockKey) -> None:
        if key in self._dirty_pending:
            self._dirty_pending.discard(key)
            try:
                self._dirty_queue.items.remove(key)
            except ValueError:
                pass  # a destager already took it

    def start_destager(self, concurrency: int = 4) -> None:
        """Run background destage workers for the rest of the simulation.

        Workers block on the dirty queue, so they cost nothing while idle
        and the simulation still terminates when client work is done.
        """
        if self._destager_running:
            return
        self._destager_running = True
        for _ in range(concurrency):
            self.sim.process(self._destage_loop(), name="cache.destager")

    def _destage_loop(self):
        while True:
            key = yield self._dirty_queue.get()
            self._dirty_pending.discard(key)
            yield self.destage(key)

    def drain_dirty(self) -> Event:
        """Destage everything currently dirty (used by tests/shutdown)."""
        done = Event(self.sim)
        self.sim.process(self._drain(done), name="cache.drain")
        return done

    def _drain(self, done: Event):
        while self._dirty_queue.items:
            key = self._dirty_queue.items.popleft()
            self._dirty_pending.discard(key)
            yield self.destage(key)
        done.succeed()

    # -- failure handling -----------------------------------------------------------------

    def on_blade_fail(self, blade_id: int) -> tuple[int, int]:
        """A blade died: its cache is gone.

        Dirty blocks it owned survive iff a replica exists (the replica is
        promoted to owner, §6.1 — N-way replication survives N−1 failures).
        Returns ``(salvaged_count, lost_count)``.
        """
        if blade_id in self.caches:
            self.caches[blade_id].drop_all()
        salvaged, lost = self.directory.blade_failed(blade_id)
        for key in salvaged:
            entry = self.directory.entry(key)
            new_owner = entry.owner if entry else None
            if new_owner is not None and new_owner in self.caches:
                promoted = self.caches[new_owner].entry(key)
                if promoted is not None:
                    promoted.state = BlockState.MODIFIED
            self._enqueue_dirty(key)
        for key in lost:
            self._dequeue_dirty(key)
        self.lost_dirty_blocks.extend(lost)
        self.metrics.counter("failure.salvaged").incr(len(salvaged))
        self.metrics.counter("failure.lost").incr(len(lost))
        obs = self._obs() if self.sim.obs is not None else None
        if obs is not None:
            if lost:
                obs.log.critical("cache.pool", "dirty_data_lost",
                                 blade=blade_id, lost=len(lost),
                                 salvaged=len(salvaged))
            else:
                obs.log.error("cache.pool", "blade_cache_lost",
                              blade=blade_id, salvaged=len(salvaged))
        return len(salvaged), len(lost)

    def on_blade_repair(self, blade_id: int) -> None:
        """A blade rejoined (replaced/rebooted) with a cold cache.

        Nothing structural to restore — :meth:`on_blade_fail` already
        dropped its contents and reassigned dirty owners — but the rejoin
        is recorded so health/metrics reflect the recovery.
        """
        self.metrics.counter("failure.blade_repairs").incr()
        obs = self._obs() if self.sim.obs is not None else None
        if obs is not None:
            obs.log.info("cache.pool", "blade_rejoined", blade=blade_id)

    # -- health ------------------------------------------------------------------------

    def hit_ratio(self) -> float:
        """Fraction of reads served from cache (local or peer); 1.0 when
        no reads have happened yet."""
        hits = (self.metrics.counter("read.local_hit").value
                + self.metrics.counter("read.remote_hit").value)
        total = hits + self.metrics.counter("read.miss").value
        return hits / total if total else 1.0

    def health(self) -> ComponentHealth:
        """Pool-level health for the management plane."""
        live = len(self.live_blades())
        total = len(self.blades)
        if live == 0:
            state = HealthState.FAILED
        elif live < total or self.lost_dirty_blocks:
            state = HealthState.DEGRADED
        else:
            state = HealthState.UP
        return ComponentHealth("cache.pool", state, metrics={
            "hit_ratio": self.hit_ratio(),
            "live_blades": float(live),
            "cached_blocks": float(sum(len(c) for c in self.caches.values())),
            "dirty_blocks": float(len(self._dirty_pending)),
            "lost_dirty_blocks": float(len(self.lost_dirty_blocks)),
        }, detail=f"{live}/{total} blades up")

    def register_health(self, mgmt: "ManagementPlane") -> None:
        """Register the pool plus every member blade with ``mgmt``."""
        mgmt.register("cache.pool", self.health)
        for _bid, blade in sorted(self.blades.items()):
            mgmt.register(blade.name, blade.health)
