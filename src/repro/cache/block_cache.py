"""Per-blade block cache with priority-aware LRU retention.

§4 lets file metadata "override cache retention priorities", so eviction
is two-level: victims come from the *lowest* retention priority bucket
first, LRU within a bucket.  Dirty blocks awaiting destage and replica
blocks pinned by N-way replication (§6.1) are not evictable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from heapq import heappop, heappush
from typing import Hashable

BlockKey = Hashable


class BlockState(Enum):
    """Coherence/pin role of a cached block."""
    SHARED = "shared"        # clean copy, possibly one of many
    MODIFIED = "modified"    # dirty owner copy, awaiting destage
    REPLICA = "replica"      # pinned safety copy of another blade's dirty block


@dataclass(slots=True)
class CacheEntry:
    """One resident block: state, retention priority, pin flag."""
    key: BlockKey
    state: BlockState
    priority: int = 0
    locked: bool = False  # pinned until destage completes
    inserted_at: float = field(default=0.0)


class CapacityError(Exception):
    """Cache cannot make room: everything resident is pinned."""


class BlockCache:
    """Fixed-capacity block cache for one controller blade.

    Capacity is counted in blocks.  Clean SHARED blocks live in
    per-priority LRU buckets; MODIFIED and REPLICA blocks are pinned and
    only leave via :meth:`clean` (destage) or :meth:`drop`.

    Eviction is O(1) amortized: a lazy min-heap of priorities tracks which
    buckets may hold victims, so finding the lowest non-empty bucket never
    re-sorts the bucket map (the old ``sorted(self._lru)`` scan).  Each
    priority sits in the heap at most once (a membership set guards the
    push); stale heap entries (buckets drained by eviction or :meth:`drop`)
    are retired on the next eviction that meets them.
    """

    def __init__(self, capacity_blocks: int, name: str = "cache") -> None:
        if capacity_blocks < 1:
            raise ValueError(f"capacity_blocks must be >= 1, got {capacity_blocks}")
        self.capacity = capacity_blocks
        self.name = name
        self._entries: dict[BlockKey, CacheEntry] = {}
        self._lru: dict[int, OrderedDict[BlockKey, None]] = {}
        self._prio_heap: list[int] = []
        self._prio_in_heap: set[int] = set()
        #: Resident blocks whose in-memory copy is corrupt (injected DRAM
        #: bitrot / wire damage): lookup still *finds* them — detection is
        #: the integrity layer's job at read/destage verification points.
        self._poisoned: set[BlockKey] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._entries

    @property
    def pinned_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.locked)

    def entry(self, key: BlockKey) -> CacheEntry | None:
        """The resident entry for a key, without touching LRU/counters."""
        return self._entries.get(key)

    def lookup(self, key: BlockKey) -> CacheEntry | None:
        """Access for I/O: updates LRU order and hit/miss counters."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if not entry.locked:
            self._lru[entry.priority].move_to_end(key)
        return entry

    def hit_ratio(self) -> float:
        """hits / (hits + misses) over the cache's lifetime."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def poison(self, key: BlockKey) -> bool:
        """Corrupt the resident copy of ``key``; False if not resident."""
        if key not in self._entries:
            return False
        self._poisoned.add(key)
        return True

    def unpoison(self, key: BlockKey) -> None:
        """The copy was repaired (refetched/reconstructed) in place."""
        self._poisoned.discard(key)

    def is_poisoned(self, key: BlockKey) -> bool:
        return key in self._poisoned

    def dirty_keys(self) -> list[BlockKey]:
        """Keys currently in MODIFIED state (awaiting destage)."""
        return [k for k, e in self._entries.items()
                if e.state is BlockState.MODIFIED]

    # -- mutation ----------------------------------------------------------------

    def insert(self, key: BlockKey, state: BlockState = BlockState.SHARED,
               priority: int = 0, now: float = 0.0) -> CacheEntry:
        """Add (or re-state) a block, evicting clean LRU victims if full.

        Raises :class:`CapacityError` when every resident block is pinned.
        """
        entries = self._entries
        existing = entries.get(key)
        if existing is not None:
            self._unlink(existing)
        self._poisoned.discard(key)  # fresh data replaces the bad copy
        while len(entries) >= self.capacity:
            if not self._evict_one():
                raise CapacityError(
                    f"{self.name}: all {self.capacity} blocks pinned")
        locked = state is BlockState.MODIFIED or state is BlockState.REPLICA
        entry = CacheEntry(key, state, priority, locked, now)
        entries[key] = entry
        if not locked:
            self._lru_add(priority, key)
        return entry

    def clean(self, key: BlockKey) -> None:
        """Destage finished: MODIFIED/REPLICA becomes evictable SHARED."""
        entry = self._entries.get(key)
        if entry is None:
            return
        if entry.locked:
            entry.locked = False
            entry.state = BlockState.SHARED
            self._lru_add(entry.priority, key)

    def drop(self, key: BlockKey) -> None:
        """Invalidate a block (coherence invalidation or volume delete)."""
        entry = self._entries.pop(key, None)
        self._poisoned.discard(key)
        if entry is not None and not entry.locked:
            self._lru[entry.priority].pop(key, None)

    def drop_all(self) -> None:
        """Blade failure: all contents vanish."""
        self._entries.clear()
        self._lru.clear()
        self._prio_heap.clear()
        self._prio_in_heap.clear()
        self._poisoned.clear()

    # -- internals ------------------------------------------------------------------

    def _lru_add(self, priority: int, key: BlockKey) -> None:
        bucket = self._lru.get(priority)
        if bucket is None:
            bucket = self._lru[priority] = OrderedDict()
        if priority not in self._prio_in_heap:
            # Announce the bucket to the eviction heap; the membership set
            # keeps each priority in the heap at most once, so the heap
            # stays bounded by the number of distinct priorities.
            self._prio_in_heap.add(priority)
            heappush(self._prio_heap, priority)
        bucket[key] = None

    def _unlink(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.key, None)
        if not entry.locked:
            bucket = self._lru.get(entry.priority)
            if bucket is not None:
                bucket.pop(entry.key, None)

    def _evict_one(self) -> bool:
        heap = self._prio_heap
        lru = self._lru
        while heap:
            priority = heap[0]
            bucket = lru.get(priority)
            if not bucket:
                # Stale: bucket drained (evictions/drops) since it was
                # pushed; retire the heap entry so _lru_add re-announces it.
                heappop(heap)
                self._prio_in_heap.discard(priority)
                continue
            victim, _ = bucket.popitem(last=False)
            del self._entries[victim]
            self._poisoned.discard(victim)
            self.evictions += 1
            return True
        return False
