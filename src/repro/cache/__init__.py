"""The coherent, pooled, N-way-replicated controller cache (§2.2, §6.1)."""

from .block_cache import (
    BlockCache,
    BlockKey,
    BlockState,
    CacheEntry,
    CapacityError,
)
from .coherence import CoherenceActions, DirEntry, Directory
from .pool import CacheCluster, ReplicationError

__all__ = [
    "BlockCache",
    "BlockKey",
    "BlockState",
    "CacheCluster",
    "CacheEntry",
    "CapacityError",
    "CoherenceActions",
    "DirEntry",
    "Directory",
    "ReplicationError",
]
