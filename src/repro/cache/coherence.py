"""Directory-based cache coherence across controller blades.

"System software would maintain cache, virtual disk, and file system
coherence across multiple controller blades" (§2.1), citing the classic
shared-memory coherence literature [26].  The directory tracks, per block:
the set of SHARED holders, the MODIFIED owner (at most one), and the
pinned replica holders created by N-way write replication (§6.1).

The directory is *metadata only* — actual block movement (and its cost)
happens on the interconnect in :mod:`repro.cache.pool`.  Methods here
return the actions the caller must pay for (invalidation messages, the
blade to fetch from), keeping protocol decisions testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .block_cache import BlockKey

#: Observer signature: ``(kind, key, detail)`` — e.g.
#: ``("invalidate", key, victims)`` or ``("remote_fetch", key, source)``.
#: The directory is sim-agnostic, so timestamping is the observer's job.
DirectoryObserver = Callable[[str, BlockKey, Any], None]


@dataclass
class DirEntry:
    """Who holds a block, and in what role."""

    sharers: set[int] = field(default_factory=set)
    owner: int | None = None           # blade holding the dirty copy
    replica_holders: set[int] = field(default_factory=set)
    dirty: bool = False

    def holders(self) -> set[int]:
        """Every blade holding any copy (sharer, owner, or replica)."""
        out = set(self.sharers) | set(self.replica_holders)
        if self.owner is not None:
            out.add(self.owner)
        return out


@dataclass(frozen=True)
class CoherenceActions:
    """What the requesting blade must do before proceeding."""

    invalidate: tuple[int, ...] = ()   # blades to send invalidations to
    fetch_from: int | None = None      # blade to copy the block from
    writeback_from: int | None = None  # dirty owner whose data must move


class Directory:
    """The cluster-wide block directory (MSI-style, with replica pins)."""

    def __init__(self, observer: DirectoryObserver | None = None) -> None:
        self._entries: dict[BlockKey, DirEntry] = {}
        self.invalidations_sent = 0
        self.remote_fetches = 0
        self.observer = observer

    def entry(self, key: BlockKey) -> DirEntry | None:
        """The directory record for a key, or None if untracked."""
        return self._entries.get(key)

    def holders(self, key: BlockKey) -> set[int]:
        """Every blade holding any copy (sharer, owner, or replica)."""
        entry = self._entries.get(key)
        return entry.holders() if entry else set()

    # -- protocol transitions ------------------------------------------------------

    def acquire_shared(self, blade: int, key: BlockKey) -> CoherenceActions:
        """Blade wants a readable copy.

        A dirty owner elsewhere must supply the data (owner→requester
        transfer); the owner's copy stays valid but the block remains dirty
        until destaged.  Otherwise any existing holder can supply it.
        """
        entry = self._entries.setdefault(key, DirEntry())
        actions: CoherenceActions
        if entry.owner is not None and entry.owner != blade:
            actions = CoherenceActions(fetch_from=entry.owner,
                                       writeback_from=entry.owner)
            entry.sharers.add(blade)
            self.remote_fetches += 1
            if self.observer is not None:
                self.observer("remote_fetch", key, entry.owner)
            return actions
        holders = entry.holders() - {blade}
        if holders:
            source = min(holders)  # deterministic choice
            entry.sharers.add(blade)
            self.remote_fetches += 1
            if self.observer is not None:
                self.observer("remote_fetch", key, source)
            return CoherenceActions(fetch_from=source)
        entry.sharers.add(blade)
        return CoherenceActions()

    def acquire_exclusive(self, blade: int, key: BlockKey) -> CoherenceActions:
        """Blade wants to write: every other copy must be invalidated."""
        entry = self._entries.setdefault(key, DirEntry())
        victims = tuple(sorted(entry.holders() - {blade}))
        fetch = None
        if entry.owner is not None and entry.owner != blade:
            fetch = entry.owner
        self.invalidations_sent += len(victims)
        if victims and self.observer is not None:
            self.observer("invalidate", key, victims)
        entry.sharers.clear()
        entry.replica_holders.clear()
        entry.owner = blade
        entry.dirty = True
        return CoherenceActions(invalidate=victims, fetch_from=fetch)

    def register_replicas(self, key: BlockKey, holders: set[int]) -> None:
        """Record the pinned N-way replica holders of a dirty block."""
        entry = self._entries.setdefault(key, DirEntry())
        entry.replica_holders = set(holders)

    def destaged(self, key: BlockKey) -> set[int]:
        """Dirty data reached disk: owner+replicas demote to clean sharers.

        Returns the blades whose pins may now be released.
        """
        entry = self._entries.get(key)
        if entry is None:
            return set()
        released = set(entry.replica_holders)
        if entry.owner is not None:
            entry.sharers.add(entry.owner)
            released.add(entry.owner)
        entry.sharers |= entry.replica_holders
        entry.replica_holders.clear()
        entry.owner = None
        entry.dirty = False
        return released

    def evicted(self, blade: int, key: BlockKey) -> None:
        """A clean copy left some blade's cache."""
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.sharers.discard(blade)
        if not entry.holders():
            del self._entries[key]

    # -- failure handling --------------------------------------------------------------

    def blade_failed(self, blade: int) -> tuple[list[BlockKey], list[BlockKey]]:
        """Remove a blade everywhere.

        Returns ``(salvaged, lost)``: dirty blocks whose owner died but a
        replica survived (one replica is promoted to owner), and dirty
        blocks with no surviving copy — real data loss.
        """
        salvaged: list[BlockKey] = []
        lost: list[BlockKey] = []
        dead: list[BlockKey] = []
        for key, entry in self._entries.items():
            entry.sharers.discard(blade)
            had_replica = blade in entry.replica_holders
            entry.replica_holders.discard(blade)
            if entry.owner == blade:
                if entry.replica_holders:
                    entry.owner = min(entry.replica_holders)
                    entry.replica_holders.discard(entry.owner)
                    salvaged.append(key)
                else:
                    entry.owner = None
                    entry.dirty = False
                    lost.append(key)
            elif had_replica and entry.dirty and entry.owner is None:
                # Shouldn't happen (owner tracked), defensive.
                lost.append(key)
            if not entry.holders():
                dead.append(key)
        for key in dead:
            del self._entries[key]
        return salvaged, lost

    def __len__(self) -> int:
        return len(self._entries)
