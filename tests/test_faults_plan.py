"""FaultPlan / FaultSpec: ordering, validation, serialization, determinism."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.sim.units import hours


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(-1.0, FaultKind.BLADE_CRASH, "blade0")
        with pytest.raises(ValueError):
            FaultSpec(1.0, FaultKind.BLADE_CRASH, "blade0", duration=-5.0)

    def test_round_trip_dict(self):
        spec = FaultSpec(3.5, FaultKind.SLOW_NODE, "blade2",
                         duration=10.0, severity=4.0)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_specs_order_by_time_then_kind(self):
        early = FaultSpec(1.0, FaultKind.SITE_LOSS, "west")
        late = FaultSpec(2.0, FaultKind.BLADE_CRASH, "blade0")
        tied = FaultSpec(1.0, FaultKind.BLADE_CRASH, "blade0")
        assert sorted([late, early, tied]) == [tied, early, late]


class TestPlan:
    def test_add_keeps_schedule_sorted(self):
        plan = (FaultPlan()
                .add(5.0, FaultKind.DISK_FAIL, "disk3")
                .add(1.0, "blade_crash", "blade0", duration=2.0))
        assert [s.at for s in plan] == [1.0, 5.0]
        assert plan.specs[0].kind is FaultKind.BLADE_CRASH  # str coerced

    def test_by_kind(self):
        plan = (FaultPlan()
                .add(1.0, FaultKind.LINK_FLAP, "wan.ab")
                .add(2.0, FaultKind.LINK_FLAP, "wan.bc")
                .add(3.0, FaultKind.SITE_LOSS, "west"))
        assert len(plan.by_kind("link_flap")) == 2
        assert len(plan.by_kind(FaultKind.SITE_LOSS)) == 1

    def test_json_round_trip(self):
        plan = (FaultPlan(seed=None)
                .add(1.0, FaultKind.BLADE_CRASH, "blade0", duration=30.0)
                .add(2.5, FaultKind.TRANSIENT_IO, "cache", severity=3.0))
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs == plan.specs
        assert clone.to_json() == plan.to_json()

    def test_random_is_deterministic(self):
        kw = dict(horizon=hours(500),
                  targets={FaultKind.BLADE_CRASH: ["blade0", "blade1"],
                           FaultKind.LINK_FLAP: ["wan.ab"]},
                  mtbf=hours(40), mttr=hours(2))
        a = FaultPlan.random(seed=7, **kw)
        b = FaultPlan.random(seed=7, **kw)
        c = FaultPlan.random(seed=8, **kw)
        assert len(a) > 0
        assert a.specs == b.specs
        assert a.specs != c.specs
        assert a.to_json() == b.to_json()

    def test_random_substreams_are_independent(self):
        # Adding a new target must not perturb an existing target's
        # timeline — each (kind, target) pair draws from its own named
        # substream.
        kw = dict(horizon=hours(500), mtbf=hours(40), mttr=hours(2))
        small = FaultPlan.random(
            seed=7, targets={FaultKind.BLADE_CRASH: ["blade0"]}, **kw)
        big = FaultPlan.random(
            seed=7, targets={FaultKind.BLADE_CRASH: ["blade0", "blade1"],
                             FaultKind.DISK_FAIL: ["disk0"]}, **kw)
        blade0 = [s for s in big if s.target == "blade0"]
        assert blade0 == small.specs

    def test_random_outages_do_not_overlap_per_target(self):
        plan = FaultPlan.random(
            seed=11, horizon=hours(2000),
            targets={FaultKind.BLADE_CRASH: ["blade0"]},
            mtbf=hours(20), mttr=hours(5))
        specs = plan.specs
        assert len(specs) >= 2
        for prev, cur in zip(specs, specs[1:]):
            assert cur.at >= prev.at + prev.duration

    def test_random_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.random(seed=1, horizon=0.0, targets={}, mtbf=1, mttr=1)
        with pytest.raises(ValueError):
            FaultPlan.random(seed=1, horizon=10.0, targets={}, mtbf=0, mttr=1)

    def test_random_severity_conventions(self):
        plan = FaultPlan.random(
            seed=3, horizon=hours(1000),
            targets={FaultKind.SLOW_NODE: ["blade0"],
                     FaultKind.TRANSIENT_IO: ["cache"]},
            mtbf=hours(30), mttr=hours(1),
            slow_factor=6.0, transient_burst=4)
        slow = plan.by_kind(FaultKind.SLOW_NODE)
        trans = plan.by_kind(FaultKind.TRANSIENT_IO)
        assert slow and all(s.severity == 6.0 for s in slow)
        assert trans and all(s.severity == 4.0 for s in trans)
        # Transient bursts are instantaneous: nothing to repair.
        assert all(s.duration == 0.0 for s in trans)
