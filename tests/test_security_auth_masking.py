"""Unit tests for authentication, LUN masking, zoning, and the audit log."""

import pytest

from repro.security import (
    AuditLog,
    AuthError,
    Authenticator,
    LunMaskingTable,
    MaskingViolation,
    SecureInstallation,
    Zone,
    hardened_installation,
    naive_installation,
)


class TestAuthenticator:
    def make(self):
        auth = Authenticator()
        auth.add_account("alice", "s3cret", roles={"physics"})
        auth.grant("physics", "volume:phys-*", "read")
        auth.grant("physics", "volume:phys-*", "write")
        return auth

    def test_good_login_and_authorize(self):
        auth = self.make()
        token = auth.authenticate("alice", "s3cret", now=0.0)
        assert auth.authorize(token.value, "volume:phys-1", "read")
        assert auth.authorize(token.value, "volume:phys-1", "write")

    def test_wildcard_scoping(self):
        auth = self.make()
        token = auth.authenticate("alice", "s3cret")
        assert not auth.authorize(token.value, "volume:chem-1", "read")

    def test_bad_secret_rejected(self):
        auth = self.make()
        with pytest.raises(AuthError):
            auth.authenticate("alice", "wrong")
        assert auth.failed_attempts == 1

    def test_unknown_account_rejected(self):
        auth = self.make()
        with pytest.raises(AuthError):
            auth.authenticate("mallory", "x")

    def test_disabled_account_rejected(self):
        auth = self.make()
        auth.disable_account("alice")
        with pytest.raises(AuthError):
            auth.authenticate("alice", "s3cret")

    def test_token_expiry(self):
        auth = self.make()
        token = auth.authenticate("alice", "s3cret", now=0.0)
        assert auth.authorize(token.value, "volume:phys-1", "read", now=100.0)
        assert not auth.authorize(token.value, "volume:phys-1", "read",
                                  now=4000.0)

    def test_invalid_token_denied(self):
        auth = self.make()
        assert not auth.authorize("forged", "volume:phys-1", "read")

    def test_require_raises(self):
        auth = self.make()
        token = auth.authenticate("alice", "s3cret")
        auth.require(token.value, "volume:phys-1", "read")
        with pytest.raises(AuthError):
            auth.require(token.value, "volume:chem-1", "read")

    def test_duplicate_account_rejected(self):
        auth = self.make()
        with pytest.raises(ValueError):
            auth.add_account("alice", "x")

    def test_decisions_audited(self):
        auth = self.make()
        token = auth.authenticate("alice", "s3cret")
        auth.authorize(token.value, "volume:chem-1", "read")
        assert len(auth.audit.denied()) == 1
        assert auth.audit.verify_chain()


class TestLunMasking:
    def make(self):
        table = LunMaskingTable()
        table.register_lun("lun0", owner="physics")
        table.register_lun("lun1", owner="chemistry")
        table.expose("wwn-host-a", "lun0")
        table.expose("wwn-host-b", "lun1")
        table.expose("wwn-host-b", "lun0", read_only=True)
        return table

    def test_visibility_is_per_initiator(self):
        table = self.make()
        assert table.visible_luns("wwn-host-a") == {"lun0"}
        assert table.visible_luns("wwn-host-b") == {"lun0", "lun1"}
        assert table.visible_luns("wwn-intruder") == set()

    def test_access_checks(self):
        table = self.make()
        assert table.check("wwn-host-a", "lun0", "read")
        assert not table.check("wwn-host-a", "lun1", "read")
        assert not table.check("wwn-intruder", "lun0", "read")

    def test_read_only_exposure(self):
        table = self.make()
        assert table.check("wwn-host-b", "lun0", "read")
        assert not table.check("wwn-host-b", "lun0", "write")

    def test_require_raises(self):
        table = self.make()
        with pytest.raises(MaskingViolation):
            table.require("wwn-intruder", "lun0", "read")

    def test_revoke(self):
        table = self.make()
        table.revoke("wwn-host-a", "lun0")
        assert not table.check("wwn-host-a", "lun0", "read")

    def test_unknown_lun_rejected(self):
        table = self.make()
        with pytest.raises(ValueError):
            table.expose("wwn-host-a", "ghost")
        with pytest.raises(ValueError):
            table.register_lun("lun0")

    def test_denials_audited(self):
        table = self.make()
        table.check("wwn-intruder", "lun0", "read")
        assert len(table.audit.denied()) == 1


class TestZoning:
    def test_hardened_blocks_attack_suite(self):
        inst = hardened_installation()
        results = inst.run_attack_suite()
        assert all(r.blocked for r in results)

    def test_naive_installation_is_porous(self):
        inst = naive_installation()
        results = inst.run_attack_suite()
        blocked = sum(1 for r in results if r.blocked)
        # Only the no-user-code property is architectural; everything
        # else is wide open on a flat SAN.
        assert blocked <= 2
        names_open = {r.name for r in results if not r.blocked}
        assert "cross_fabric" in names_open
        assert "stolen_disk" in names_open

    def test_selective_inband_disable(self):
        inst = SecureInstallation()
        inst.disable_inband_command("p1", "modify_masking")
        assert inst.attempt_inband_control("p1", "modify_masking").blocked
        assert not inst.attempt_inband_control("p1", "read_config").blocked
        assert not inst.attempt_inband_control("p2", "modify_masking").blocked

    def test_unknown_command_rejected(self):
        inst = SecureInstallation()
        with pytest.raises(ValueError):
            inst.disable_inband_command("p1", "rm_rf")

    def test_user_code_always_blocked(self):
        for inst in (hardened_installation(), naive_installation()):
            assert inst.attempt_user_code("evil()").blocked

    def test_mgmt_zone_isolated(self):
        inst = SecureInstallation()
        res = inst.attempt_cross_fabric(Zone.HOST_FABRIC, Zone.MGMT_NET)
        assert res.blocked


class TestAuditLog:
    def test_chain_verifies(self):
        log = AuditLog()
        for i in range(5):
            log.record(float(i), "actor", "act", "allowed")
        assert log.verify_chain()
        assert len(log) == 5

    def test_tampering_detected(self):
        log = AuditLog()
        log.record(0.0, "a", "x", "allowed")
        log.record(1.0, "b", "y", "denied")
        log.events[0] = type(log.events[0])(
            0.0, "a", "x", "denied", "", log.events[0].chain)
        assert not log.verify_chain()

    def test_filters(self):
        log = AuditLog()
        log.record(0.0, "a", "x", "allowed")
        log.record(1.0, "b", "y", "denied")
        assert len(log.allowed()) == 1
        assert len(log.denied()) == 1
