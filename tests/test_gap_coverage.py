"""Second gap-filling sweep: error paths, invariants, and a model-based
namespace test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import FilePolicy, Namespace, ReplicationMode
from repro.geo import GeoReplicator, Site, WanNetwork
from repro.sim import Simulator
from repro.sim.units import gbps, mib


class TestScsiBackendFailures:
    def test_backend_exception_reaches_initiator(self):
        from repro.protocols import ScsiTarget
        from repro.security import LunMaskingTable
        sim = Simulator()
        masking = LunMaskingTable()
        masking.register_lun("lun0")
        masking.expose("host", "lun0")

        def broken_backend(lun, op, offset, nbytes):
            ev = sim.event()
            ev.fail(IOError("medium error"))
            return ev

        target = ScsiTarget(sim, masking, broken_backend)
        caught = []

        def proc():
            try:
                yield target.submit("host", "lun0", "read", 0, 512)
            except IOError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]
        assert target.commands_served == 0


class TestGeoInvariants:
    def make(self):
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a", (0.0, 0.0)))
        b = net.add_site(Site(sim, "b", (0.0, 500.0)))
        c = net.add_site(Site(sim, "c", (0.0, 1500.0)))
        net.connect(a, b, bandwidth=gbps(2.5))
        net.connect(b, c, bandwidth=gbps(2.5))
        net.connect(a, c, bandwidth=gbps(1.0))
        return sim, net, a, b, c

    def test_replica_targets_never_include_failed_sites(self):
        sim, net, a, b, c = self.make()
        rep = GeoReplicator(sim, net)
        policy = FilePolicy(replication_mode=ReplicationMode.SYNC,
                            replication_sites=2)
        gf = rep.register("/f", policy, a)
        b.fail()
        targets = rep.replica_targets(gf, a)
        assert all(t.name != "b" for t in targets)
        assert [t.name for t in targets] == ["c"]

    def test_backlog_never_negative(self):
        sim, net, a, b, _c = self.make()
        rep = GeoReplicator(sim, net)
        rep.register("/f", FilePolicy(
            replication_mode=ReplicationMode.ASYNC,
            replication_sites=1), a)

        def proc():
            for _ in range(5):
                yield rep.write("/f", mib(2))
                yield sim.timeout(0.01)

        sim.process(proc())
        sim.run(until=60.0)
        assert all(v >= 0 for v in rep.async_backlog.values())
        assert rep.async_backlog[("/f", "b")] == 0

    def test_sync_to_zero_live_targets_degrades_gracefully(self):
        """All candidate replica sites down: the write still completes
        locally (there is simply nowhere to copy to)."""
        sim, net, a, b, c = self.make()
        rep = GeoReplicator(sim, net)
        rep.register("/f", FilePolicy(
            replication_mode=ReplicationMode.SYNC,
            replication_sites=1), a)
        b.fail()
        c.fail()

        def proc():
            got = yield rep.write("/f", mib(1))
            return got

        p = sim.process(proc())
        sim.run(until=p)
        assert p.value == mib(1)
        assert rep.files["/f"].copies == {"a"}


class TestNasAttrCacheExpiry:
    def test_cache_expires_after_ttl(self):
        from repro.fs import ParallelFileSystem
        from repro.protocols import NasServer
        from repro.virt import Allocator, StoragePool
        sim = Simulator()
        page = 64 * 1024
        alloc = Allocator([StoragePool("p", 64 * page, page)])
        pfs = ParallelFileSystem(alloc, [0], stripe_unit=page)
        pfs.create("/f")
        nas = NasServer(sim, pfs, lambda b, k, o: sim.timeout(0),
                        attr_cache_ttl=1.0)

        def proc():
            yield nas.getattr("/f")
            first = nas.rpc_count
            yield sim.timeout(2.0)  # TTL passes
            yield nas.getattr("/f")
            return nas.rpc_count - first

        p = sim.process(proc())
        sim.run()
        assert p.value == 1  # re-fetched after expiry


class TestMetacenterErrors:
    def test_read_unknown_file_fails(self):
        from repro.core import SystemConfig
        from repro.geo import MetadataCenter
        from repro.plan import SiteSpec
        sim = Simulator()
        center = MetadataCenter(sim, [SiteSpec("a"),
                                      SiteSpec("b", (0.0, 100.0))],
                                config=SystemConfig(
                                    blade_count=2, disk_count=8,
                                    disk_capacity=mib(32),
                                    cache_bytes_per_blade=mib(4)))
        center.connect("a", "b")
        caught = []

        def proc():
            try:
                yield center.read("/ghost", 0, mib(1), at="a")
            except KeyError:
                caught.append(True)

        sim.process(proc())
        sim.run(until=10.0)
        assert caught == [True]


# -- model-based namespace test -------------------------------------------------

_name = st.sampled_from(["a", "b", "c", "d"])
_path = st.builds(lambda parts: "/" + "/".join(parts),
                  st.lists(_name, min_size=1, max_size=3))


@settings(max_examples=60)
@given(st.lists(st.tuples(st.sampled_from(["mkdirs", "create", "unlink"]),
                          _path), max_size=40))
def test_namespace_matches_dict_model(ops):
    """The namespace agrees with a flat dict model for mkdir/create/unlink
    (where the model's preconditions hold)."""
    ns = Namespace()
    model: dict[str, str] = {}  # path -> "dir" | "file"

    def parent_ok(path):
        parts = path.strip("/").split("/")
        for i in range(1, len(parts)):
            prefix = "/" + "/".join(parts[:i])
            if model.get(prefix) != "dir":
                return False
        return True

    def has_children(path):
        return any(k != path and k.startswith(path + "/") for k in model)

    for op, path in ops:
        if op == "mkdirs":
            # Valid only if no ancestor (or the node) is a file.
            parts = path.strip("/").split("/")
            conflict = any(
                model.get("/" + "/".join(parts[:i])) == "file"
                for i in range(1, len(parts) + 1))
            if conflict:
                continue
            ns.mkdirs(path)
            for i in range(1, len(parts) + 1):
                model["/" + "/".join(parts[:i])] = "dir"
        elif op == "create":
            if path in model or not parent_ok(path):
                continue
            ns.create(path)
            model[path] = "file"
        elif op == "unlink":
            if path not in model:
                continue
            if model[path] == "dir" and has_children(path):
                continue
            ns.unlink(path)
            del model[path]
        # Invariant: every model path resolves with the right type.
        for p, kind in model.items():
            node = ns.lookup(p)
            assert node.is_dir == (kind == "dir")
        # And nothing extra exists at the model's paths' siblings.
        files = {p for p, _ in ns.walk_files()}
        assert files == {p for p, kind in model.items() if kind == "file"}
