"""Tests for replication statistics and cache backing-failure hardening."""

import random

import pytest

from repro.cache import CacheCluster
from repro.hardware import ControllerBlade, Disk, DiskFailedError
from repro.sim import (
    ReplicationSummary,
    Simulator,
    replicate,
    replicate_parallel,
    run_replications,
    summarize,
)
from repro.sim.units import mib


class TestReplicationStats:
    def test_summarize_known_values(self):
        s = summarize([10.0, 12.0, 11.0, 13.0, 9.0])
        assert s.mean == pytest.approx(11.0)
        assert s.n == 5
        assert s.low < 11.0 < s.high
        assert 0 < s.half_width < 3.0

    def test_single_replication_infinite_interval(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.half_width == float("inf")

    def test_identical_values_zero_width(self):
        s = summarize([7.0, 7.0, 7.0])
        assert s.half_width == 0.0

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert summarize(values, 0.99).half_width > \
            summarize(values, 0.90).half_width

    def test_replicate_runs_each_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return float(seed)

        s = replicate(run, [1, 2, 3])
        assert seen == [1, 2, 3]
        assert s.mean == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, [])

    def test_str_format(self):
        assert "±" in str(ReplicationSummary(1.0, 0.1, 3, 0.95))


class TestCacheBackingFailures:
    def make_cluster(self, sim, disk):
        blades = [ControllerBlade(sim, i, cache_bytes=mib(1))
                  for i in range(2)]

        def backing_read(key, nbytes):
            return disk.read(0, nbytes)

        def backing_write(key, nbytes):
            return disk.write(0, nbytes)

        return CacheCluster(sim, blades, backing_read, backing_write,
                            replication=1)

    def test_miss_on_failed_backing_fails_cleanly(self):
        sim = Simulator()
        disk = Disk(sim, mib(64))
        cluster = self.make_cluster(sim, disk)
        disk.fail()
        caught = []

        def proc():
            try:
                yield cluster.read(0, ("v", 1))
            except DiskFailedError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]
        assert cluster.metrics.counter("read.backing_errors").value == 1

    def test_destage_to_failed_backing_requeues(self):
        sim = Simulator()
        disk = Disk(sim, mib(64))
        cluster = self.make_cluster(sim, disk)

        def proc():
            yield cluster.write(0, ("v", 1))
            disk.fail()
            result = yield cluster.destage(("v", 1))
            assert result is False
            # Block is still dirty, still queued, nothing was lost.
            assert cluster.directory.entry(("v", 1)).dirty
            assert ("v", 1) in cluster._dirty_pending
            disk.repair()
            result = yield cluster.destage(("v", 1))
            return result

        p = sim.process(proc())
        sim.run(until=p)
        assert p.value is True
        assert cluster.metrics.counter("destage.errors").value == 1

    def test_write_path_unaffected_by_backing_failure(self):
        """Write-back absorbs writes even while the farm is down."""
        sim = Simulator()
        disk = Disk(sim, mib(64))
        cluster = self.make_cluster(sim, disk)
        disk.fail()

        def proc():
            got = yield cluster.write(0, ("v", 2))
            return got

        p = sim.process(proc())
        sim.run(until=p)
        assert p.value == "cached"


def _replication_body(seed: int) -> float:
    """Module-level (hence picklable) body for the parallel runner tests."""
    rng = random.Random(seed)
    sim = Simulator()
    finish = []

    def proc():
        for _ in range(25):
            yield sim.timeout(rng.uniform(0.001, 0.01))
        finish.append(sim.now)

    sim.process(proc())
    sim.run()
    return finish[0]


def _exploding_body(seed: int) -> float:
    """Module-level body that fails for one seed (parallel error test)."""
    if seed == 3:
        raise ValueError(f"model blew up for seed {seed}")
    return float(seed)


class TestParallelReplications:
    def test_parallel_merge_identical_to_serial(self):
        seeds = list(range(1, 9))
        serial = run_replications(_replication_body, seeds, max_workers=1)
        fanned = run_replications(_replication_body, seeds, max_workers=4)
        assert fanned == serial  # same values, same (seed) order

    def test_replicate_parallel_summary_identical(self):
        seeds = [3, 1, 4, 1, 5]
        assert (replicate_parallel(_replication_body, seeds)
                == replicate(_replication_body, seeds))

    def test_model_error_propagates_from_parallel_run(self):
        # A genuine model error must surface, not trigger the serial
        # fallback (which would re-run the sweep and hide the traceback).
        with pytest.raises(ValueError, match="seed 3"):
            run_replications(_exploding_body, [1, 2, 3, 4], max_workers=2)

    def test_unpicklable_body_falls_back_to_serial(self):
        calls = []

        def local_body(seed):  # closure: not picklable for a process pool
            calls.append(seed)
            return float(seed)

        out = run_replications(local_body, [1, 2, 3], max_workers=2)
        assert out == [1.0, 2.0, 3.0]
        assert calls == [1, 2, 3]  # ran (serially) in seed order
