"""Event log: ring bounding, severity filtering, greppable rendering."""

import pytest

from repro.obs import EventLog, Severity
from repro.sim import Simulator


def test_records_stamped_with_simulated_time():
    sim = Simulator()
    log = EventLog(sim)

    def proc():
        log.info("cache", "warmup")
        yield sim.timeout(1.5)
        log.info("cache", "steady")

    sim.process(proc())
    sim.run()
    recs = log.records()
    assert [r.ts for r in recs] == [0.0, 1.5]
    assert [r.kind for r in recs] == ["warmup", "steady"]


def test_ring_buffer_bounds_memory_and_counts_drops():
    sim = Simulator()
    log = EventLog(sim, capacity=8)
    for i in range(20):
        log.debug("blade0", "tick", i=i)
    assert len(log) == 8
    assert log.dropped == 12
    assert log.emitted == 20
    # The ring keeps the NEWEST records.
    assert [dict(r.attrs)["i"] for r in log.records()] == list(range(12, 20))


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(Simulator(), capacity=0)


def test_min_severity_suppresses_at_emit_time():
    sim = Simulator()
    log = EventLog(sim, min_severity=Severity.WARNING)
    assert log.debug("x", "noise") is None
    assert log.info("x", "noise") is None
    rec = log.warning("x", "signal")
    assert rec is not None
    log.error("x", "bad")
    log.critical("x", "worse")
    assert len(log) == 3
    assert log.suppressed == 2
    assert log.emitted == 3


def test_records_filter_by_severity_component_kind():
    sim = Simulator()
    log = EventLog(sim)
    log.debug("cache", "evict")
    log.warning("cache", "destage_retry")
    log.error("blade1", "failed")
    assert len(log.records(min_severity=Severity.WARNING)) == 2
    assert len(log.records(component="cache")) == 2
    assert len(log.records(component="cache",
                           min_severity=Severity.WARNING)) == 1
    assert log.records(kind="failed")[0].component == "blade1"


def test_disabled_log_emits_nothing():
    sim = Simulator()
    log = EventLog(sim, enabled=False)
    assert log.critical("x", "ignored") is None
    assert len(log) == 0
    assert log.emitted == 0


def test_render_is_greppable_one_line_per_record():
    sim = Simulator()
    log = EventLog(sim)
    log.warning("geo.replicator", "replication_lag", "backlog over watermark",
                site="dr-site", backlog_bytes=128)
    log.info("raid.rebuild", "region_done", completed=3)
    text = log.render()
    lines = text.splitlines()
    assert len(lines) == 2
    # Each field is greppable: level, component, kind, k=v attrs.
    assert "WARNING" in lines[0]
    assert "geo.replicator" in lines[0]
    assert "replication_lag" in lines[0]
    assert "backlog over watermark" in lines[0]
    assert "backlog_bytes=128" in lines[0]
    assert "site=dr-site" in lines[0]
    assert "INFO" in lines[1] and "completed=3" in lines[1]
    # Filtered rendering drops the INFO line.
    assert "region_done" not in log.render(min_severity=Severity.WARNING)


def test_attrs_render_in_sorted_key_order():
    sim = Simulator()
    log = EventLog(sim)
    rec = log.info("c", "k", z=1, a=2, m=3)
    assert tuple(k for k, _ in rec.attrs) == ("a", "m", "z")


def test_counts_by_severity():
    sim = Simulator()
    log = EventLog(sim)
    log.debug("c", "a")
    log.debug("c", "b")
    log.error("c", "d")
    assert log.counts_by_severity() == {"DEBUG": 2, "ERROR": 1}
