"""Integration tests for the pooled coherent cache cluster."""

import pytest

from repro.cache import CacheCluster, ReplicationError
from repro.hardware import ControllerBlade
from repro.sim import Simulator
from repro.sim.units import mib

BLOCK = 64 * 1024


def make_cluster(sim, n_blades=4, replication=2, cache_bytes=mib(1),
                 disk_latency=0.008):
    blades = [ControllerBlade(sim, i, cache_bytes=cache_bytes)
              for i in range(n_blades)]

    def backing_read(key, nbytes):
        return sim.timeout(disk_latency)

    def backing_write(key, nbytes):
        return sim.timeout(disk_latency)

    return CacheCluster(sim, blades, backing_read, backing_write,
                        block_size=BLOCK, replication=replication)


def test_read_miss_then_local_hit():
    sim = Simulator()
    cluster = make_cluster(sim)

    def proc():
        first = yield cluster.read(0, ("v", 0))
        second = yield cluster.read(0, ("v", 0))
        return (first, second)

    p = sim.process(proc())
    sim.run()
    assert p.value == ("disk", "local")
    assert cluster.metrics.counter("read.miss").value == 1
    assert cluster.metrics.counter("read.local_hit").value == 1


def test_remote_hit_from_peer_cache():
    """The pooled-cache claim: blade 1 finds blade 0's copy instead of
    going to disk, and a peer transfer is much faster than a disk read."""
    sim = Simulator()
    cluster = make_cluster(sim, disk_latency=0.008)
    timing = {}

    def proc():
        t0 = sim.now
        yield cluster.read(0, ("v", 7))
        timing["miss"] = sim.now - t0
        t0 = sim.now
        source = yield cluster.read(1, ("v", 7))
        timing["remote"] = sim.now - t0
        return source

    p = sim.process(proc())
    sim.run()
    assert p.value == "remote"
    assert timing["remote"] < timing["miss"] / 5


def test_write_places_replicas():
    sim = Simulator()
    cluster = make_cluster(sim, replication=3)

    def proc():
        yield cluster.write(0, ("v", 1))

    sim.process(proc())
    sim.run()
    assert cluster.metrics.counter("write.replicas_placed").value == 2
    holders = cluster.directory.holders(("v", 1))
    assert 0 in holders and len(holders) == 3


def test_write_replication_1_has_no_replicas():
    sim = Simulator()
    cluster = make_cluster(sim, replication=1)

    def proc():
        yield cluster.write(0, ("v", 1))

    sim.process(proc())
    sim.run()
    assert cluster.directory.holders(("v", 1)) == {0}


def test_write_then_read_other_blade_coheres():
    sim = Simulator()
    cluster = make_cluster(sim)

    def proc():
        yield cluster.write(0, ("v", 2))
        # Read from a blade that holds neither the dirty copy nor a replica.
        holders = cluster.directory.holders(("v", 2))
        reader = next(b for b in (3, 2, 1) if b not in holders)
        src = yield cluster.read(reader, ("v", 2))
        return src

    p = sim.process(proc())
    sim.run()
    assert p.value == "remote"  # fetched from the dirty owner, not disk


def test_write_invalidates_sharers():
    sim = Simulator()
    cluster = make_cluster(sim)

    def proc():
        yield cluster.read(1, ("v", 3))   # blade 1 gets a shared copy
        yield cluster.read(2, ("v", 3))
        yield cluster.write(0, ("v", 3))  # must invalidate blades 1, 2

    sim.process(proc())
    sim.run()
    assert cluster.metrics.counter("coherence.invalidations").value == 2
    # The shared copies were dropped; any residual copy on blades 1/2 is a
    # freshly placed REPLICA of the new dirty data, not a stale sharer.
    from repro.cache import BlockState
    for blade in (1, 2):
        entry = cluster.caches[blade].entry(("v", 3))
        assert entry is None or entry.state is BlockState.REPLICA
    assert cluster.directory.entry(("v", 3)).sharers == set()


def test_destage_releases_pins():
    sim = Simulator()
    cluster = make_cluster(sim)

    def proc():
        yield cluster.write(0, ("v", 4))
        assert cluster.caches[0].entry(("v", 4)).locked
        result = yield cluster.destage(("v", 4))
        return result

    p = sim.process(proc())
    sim.run()
    assert p.value is True
    assert not cluster.caches[0].entry(("v", 4)).locked
    entry = cluster.directory.entry(("v", 4))
    assert not entry.dirty


def test_destage_clean_block_is_noop():
    sim = Simulator()
    cluster = make_cluster(sim)

    def proc():
        result = yield cluster.destage(("v", 99))
        return result

    p = sim.process(proc())
    sim.run()
    assert p.value is False


def test_background_destager_drains_dirty():
    sim = Simulator()
    cluster = make_cluster(sim)
    cluster.start_destager()

    def proc():
        for i in range(8):
            yield cluster.write(0, ("v", i))

    sim.process(proc())
    sim.run(until=2.0)
    assert cluster.metrics.counter("destage.completed").value == 8
    assert not cluster._dirty_queue.items
    assert not cluster._dirty_pending


def test_blade_failure_with_replication_preserves_dirty_data():
    sim = Simulator()
    cluster = make_cluster(sim, replication=2)

    def proc():
        yield cluster.write(0, ("v", 5))
        cluster.blades[0].fail()
        salvaged, lost = cluster.on_blade_fail(0)
        assert (salvaged, lost) == (1, 0)
        # The promoted replica can still be destaged.
        result = yield cluster.destage(("v", 5))
        return result

    p = sim.process(proc())
    sim.run()
    assert p.value is True
    assert cluster.lost_dirty_blocks == []


def test_blade_failure_without_replication_loses_dirty_data():
    sim = Simulator()
    cluster = make_cluster(sim, replication=1)

    def proc():
        yield cluster.write(0, ("v", 6))
        cluster.blades[0].fail()
        salvaged, lost = cluster.on_blade_fail(0)
        return (salvaged, lost)

    p = sim.process(proc())
    sim.run()
    assert p.value == (0, 1)
    assert cluster.lost_dirty_blocks == [("v", 6)]


def test_nway_survives_n_minus_1_failures():
    """§6.1: N-way replication allows N−1 failures without data loss."""
    sim = Simulator()
    cluster = make_cluster(sim, n_blades=5, replication=3)

    def proc():
        yield cluster.write(0, ("v", 7))
        for victim in (0, 1, 2):
            # Kill whoever currently owns/replicates, worst case.
            holders = sorted(cluster.directory.holders(("v", 7)))
            if not holders:
                break
            target = holders[0]
            cluster.blades[target].fail()
            cluster.on_blade_fail(target)
        return len(cluster.lost_dirty_blocks)

    p = sim.process(proc())
    sim.run()
    # 3 copies, 3 kills: the third kill finally loses it — but only then.
    assert p.value == 1
    assert cluster.metrics.counter("failure.salvaged").value == 2


def test_replication_fails_without_enough_blades():
    sim = Simulator()
    cluster = make_cluster(sim, n_blades=2, replication=3)
    failed = []

    def proc():
        try:
            yield cluster.write(0, ("v", 8))
        except ReplicationError:
            failed.append(True)

    sim.process(proc())
    sim.run()
    assert failed == [True]


def test_pooled_capacity_grows_with_blades():
    sim = Simulator()
    c4 = make_cluster(sim, n_blades=4)
    c8 = make_cluster(sim, n_blades=8)
    assert c8.total_cache_blocks() == 2 * c4.total_cache_blocks()


def test_cluster_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CacheCluster(sim, [], lambda k, n: sim.timeout(0),
                     lambda k, n: sim.timeout(0))
    blade = ControllerBlade(sim, 0)
    with pytest.raises(ValueError):
        CacheCluster(sim, [blade], lambda k, n: sim.timeout(0),
                     lambda k, n: sim.timeout(0), replication=0)
