"""Unit + property tests for pools and the refcounting allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virt import AllocationError, Allocator, PageRef, StoragePool

PAGE = 1024


def make_allocator(pools=(("a", 10), ("b", 5))):
    return Allocator([StoragePool(name, count * PAGE, PAGE)
                      for name, count in pools])


class TestStoragePool:
    def test_allocate_free_cycle(self):
        pool = StoragePool("p", 4 * PAGE, PAGE)
        pages = [pool.allocate() for _ in range(4)]
        assert len(set(pages)) == 4
        assert pool.free_pages == 0
        with pytest.raises(AllocationError):
            pool.allocate()
        pool.free(pages[0])
        assert pool.free_pages == 1
        assert pool.used_bytes == 3 * PAGE

    def test_double_free_rejected(self):
        pool = StoragePool("p", 2 * PAGE, PAGE)
        page = pool.allocate()
        pool.free(page)
        with pytest.raises(ValueError):
            pool.free(page)

    def test_validation(self):
        with pytest.raises(ValueError):
            StoragePool("p", 10, PAGE)  # smaller than one page
        with pytest.raises(ValueError):
            StoragePool("p", PAGE, 0)


class TestAllocator:
    def test_allocates_from_most_free_pool(self):
        alloc = make_allocator()
        ref = alloc.allocate()
        assert ref.pool == "a"  # 10 free > 5 free

    def test_tier_filtering(self):
        alloc = Allocator([StoragePool("fast", 4 * PAGE, PAGE, tier="fc"),
                           StoragePool("old", 8 * PAGE, PAGE, tier="legacy")])
        assert alloc.allocate(tier="fc").pool == "fast"
        assert alloc.allocate(tier="legacy").pool == "old"
        with pytest.raises(AllocationError):
            alloc.allocate(tier="ssd")

    def test_exhaustion(self):
        alloc = make_allocator([("a", 2)])
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AllocationError):
            alloc.allocate()

    def test_refcounting_frees_at_zero(self):
        alloc = make_allocator([("a", 2)])
        ref = alloc.allocate()
        alloc.incref(ref)
        assert alloc.refcount(ref) == 2
        alloc.decref(ref)
        assert alloc.refcount(ref) == 1
        assert alloc.pools["a"].used_pages == 1
        alloc.decref(ref)
        assert alloc.refcount(ref) == 0
        assert alloc.pools["a"].used_pages == 0

    def test_refcount_misuse_rejected(self):
        alloc = make_allocator()
        ghost = PageRef("a", 99)
        with pytest.raises(ValueError):
            alloc.incref(ghost)
        with pytest.raises(ValueError):
            alloc.decref(ghost)

    def test_add_pool_validation(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            alloc.add_pool(StoragePool("a", 4 * PAGE, PAGE))  # dup name
        with pytest.raises(ValueError):
            alloc.add_pool(StoragePool("c", 4 * 2048, 2048))  # size mismatch

    def test_capacity_accounting(self):
        alloc = make_allocator()
        assert alloc.capacity_bytes == 15 * PAGE
        ref = alloc.allocate()
        assert alloc.used_bytes == PAGE
        assert alloc.free_bytes == 14 * PAGE
        alloc.decref(ref)
        assert alloc.used_bytes == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Allocator([])
        with pytest.raises(ValueError):
            Allocator([StoragePool("a", 4 * PAGE, PAGE),
                       StoragePool("b", 4 * 2048, 2048)])
        with pytest.raises(ValueError):
            Allocator([StoragePool("a", 4 * PAGE, PAGE),
                       StoragePool("a", 4 * PAGE, PAGE)])


@settings(max_examples=50)
@given(st.lists(st.sampled_from(["alloc", "incref", "decref"]),
                min_size=1, max_size=200))
def test_property_allocator_conserves_pages(ops):
    """Live pages + free pages is invariant under any op sequence, and no
    page is ever double-owned."""
    alloc = make_allocator([("a", 8), ("b", 8)])
    live: list[PageRef] = []
    for op in ops:
        if op == "alloc":
            try:
                live.append(alloc.allocate())
            except AllocationError:
                assert alloc.free_bytes == 0
        elif op == "incref" and live:
            alloc.incref(live[0])
            live.append(live[0])
        elif op == "decref" and live:
            ref = live.pop()
            alloc.decref(ref)
        used_pages = sum(p.used_pages for p in alloc.pools.values())
        free_pages = sum(p.free_pages for p in alloc.pools.values())
        assert used_pages + free_pages == 16
        assert used_pages == alloc.live_pages()
        assert used_pages == len(set(live))
