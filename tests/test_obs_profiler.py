"""Unit tests for the kernel self-profiler (repro.obs.profiler)."""

import json

import pytest

from repro.obs import KernelProfiler
from repro.sim import Simulator


def run_workload(sim):
    """A small deterministic mix: processes, timeouts, deferred calls."""
    def worker():
        for _ in range(5):
            yield sim.timeout(1.0)

    for _ in range(3):
        sim.process(worker(), name="worker")
    sim.call_in(2.0, lambda: None)
    sim.run()


class TestAttachment:
    def test_attach_returns_and_installs(self):
        sim = Simulator()
        prof = sim.attach_profiler()
        assert sim.profiler is prof
        assert isinstance(prof, KernelProfiler)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            KernelProfiler(sim, sample_every=0)
        with pytest.raises(ValueError):
            KernelProfiler(sim, depth_every=0)

    def test_profiler_does_not_change_simulation_results(self):
        def run(with_profiler):
            sim = Simulator()
            if with_profiler:
                sim.attach_profiler()
            done = []

            def worker(i):
                yield sim.timeout(float(i))
                done.append((i, sim.now))

            for i in range(4):
                sim.process(worker(i))
            sim.run()
            return done, sim.now, sim.events_processed

        assert run(False) == run(True)


class TestCounts:
    def test_counts_are_exact_and_deterministic(self):
        def run():
            sim = Simulator()
            prof = sim.attach_profiler()
            run_workload(sim)
            return prof

        a, b = run(), run()
        assert a.events_seen == b.events_seen > 0
        assert a.event_counts == b.event_counts
        assert a.callback_counts == b.callback_counts
        # The workload's shape is visible by category.
        assert a.event_counts["process:worker"] == 3   # process starts
        assert a.event_counts["Timeout"] == 15         # 3 workers x 5
        assert sum(1 for c in a.event_counts if c.startswith("call:")) == 1
        # Timeout wakeups resume the named worker processes.
        assert a.callback_counts["process:worker"] == 15

    def test_events_seen_matches_kernel_counter(self):
        sim = Simulator()
        prof = sim.attach_profiler()
        run_workload(sim)
        assert prof.events_seen == sim.events_processed


class TestSamplingAndDepth:
    def test_wall_sampling_respects_stride(self):
        sim = Simulator()
        prof = sim.attach_profiler(sample_every=4)
        run_workload(sim)
        assert prof.wall_samples == prof.events_seen // 4
        assert sum(prof.wall_s.values()) >= 0.0

    def test_depth_samples_bounded_and_stamped(self):
        sim = Simulator()
        prof = sim.attach_profiler(depth_every=2, depth_capacity=4)
        run_workload(sim)
        assert len(prof.depth_samples) == 4            # ring clipped
        for sim_t, nth, depth in prof.depth_samples:
            assert nth % 2 == 0
            assert depth >= 0
        stats = prof.depth_stats()
        assert stats["samples"] == 4.0
        assert stats["max"] >= stats["min"] >= 0.0

    def test_depth_stats_empty(self):
        sim = Simulator()
        prof = KernelProfiler(sim)
        assert prof.depth_stats() == {"samples": 0.0}


class TestReporting:
    def test_top_ranks_by_count_with_stable_ties(self):
        sim = Simulator()
        prof = sim.attach_profiler()
        run_workload(sim)
        top = prof.top(3, by="count")
        counts = [n for _c, n, _w in top]
        assert counts == sorted(counts, reverse=True)
        assert top[0][0] == "Timeout"

    def test_report_is_json_able_and_complete(self):
        sim = Simulator()
        prof = sim.attach_profiler()
        run_workload(sim)
        rep = json.loads(prof.to_json(top_n=5))
        assert rep["events_seen"] == prof.events_seen
        assert rep["sim_time_s"] == sim.now
        assert rep["categories"] == len(prof.event_counts)
        assert rep["top_by_count"][0]["category"] == "Timeout"
        assert {r["category"] for r in rep["top_by_wall"]} <= (
            set(prof.event_counts) | set(prof.wall_s))
        assert "process:worker" in rep["callback_targets"]
        assert rep["queue_depth"]["samples"] >= 0.0

    def test_export_snapshot_is_bounded(self):
        sim = Simulator()
        prof = sim.attach_profiler()
        run_workload(sim)
        snap = prof.export_snapshot()
        assert "callback_targets" not in snap
        assert len(snap["top_by_count"]) <= 5

    def test_prometheus_and_table(self):
        sim = Simulator()
        prof = sim.attach_profiler()
        run_workload(sim)
        prom = prof.to_prometheus()
        assert 'netstorage_kernel_dispatches{category="Timeout"} 15' in prom
        assert "netstorage_kernel_queue_depth" in prom
        table = prof.format_report()
        assert "kernel profile" in table
        assert "Timeout" in table
