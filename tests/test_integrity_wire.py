"""In-flight verification: transport digests, iSCSI header/data digests,
WAN payload verification, and the geo tier of the repair chain."""

import pytest

from repro import Simulator, SystemConfig
from repro.fs.policies import FilePolicy, ReplicationMode
from repro.geo import MetadataCenter
from repro.geo.replication import GeoReplicator
from repro.geo.site import Site
from repro.geo.wan import WanNetwork
from repro.integrity import IntegrityManager
from repro.plan import SiteSpec
from repro.protocols import IscsiPortal, ScsiTarget
from repro.protocols.transports import FC_TRANSPORT, TransportEndpoint
from repro.security import LunMaskingTable
from repro.sim.units import gbps, mib


# -- transport endpoints ---------------------------------------------------


def _endpoint(sim, digests):
    return TransportEndpoint(sim, FC_TRANSPORT, wire_bandwidth=gbps(2),
                             integrity=IntegrityManager(sim),
                             digests=digests)


def _timed_transfer(sim, ep, nbytes=mib(1)):
    ev = ep.transfer(nbytes)
    t0 = sim.now
    sim.run(until=ev)
    return sim.now - t0


def test_transport_digest_catches_and_retransmits():
    sim = Simulator()
    ep = _endpoint(sim, digests=True)
    clean = _timed_transfer(sim, ep)
    ep.corrupt_next()
    damaged = _timed_transfer(sim, ep)
    assert ep.retransmits == 1
    assert damaged > clean  # the retransmit costs real wire/CPU time
    s = ep.integrity.summary()
    assert s["injected"] == 1 and s["detected"] == 1
    assert s["repaired"] == 1 and s["silent"] == 0


def test_transport_without_digests_delivers_silently():
    sim = Simulator()
    ep = _endpoint(sim, digests=False)
    clean = _timed_transfer(sim, ep)
    ep.corrupt_next()
    damaged = _timed_transfer(sim, ep)
    assert ep.retransmits == 0
    assert damaged == clean  # nothing noticed, nothing paid
    s = ep.integrity.summary()
    assert s["injected"] == 1 and s["detected"] == 0
    assert s["silent"] == 1


def test_arming_wire_faults_requires_integrity():
    sim = Simulator()
    ep = TransportEndpoint(sim, FC_TRANSPORT, wire_bandwidth=gbps(2))
    with pytest.raises(RuntimeError):
        ep.corrupt_next()


# -- iSCSI digests ---------------------------------------------------------


def _portal(sim, **kwargs):
    masking = LunMaskingTable()
    masking.register_lun("lun0")
    masking.expose("iqn.host", "lun0")

    def backend(lun, op, offset, nbytes):
        return sim.timeout(0.001, value=nbytes)

    target = ScsiTarget(sim, masking, backend)
    return IscsiPortal(sim, target, integrity=IntegrityManager(sim),
                       **kwargs)


def _submit(sim, portal, session):
    ev = portal.submit(session, "lun0", "read", 0, mib(1))
    t0 = sim.now
    sim.run(until=ev)
    return sim.now - t0


def test_iscsi_digest_miss_retransmits_response():
    sim = Simulator()
    portal = _portal(sim)
    session = portal.login("iqn.host")
    clean = _submit(sim, portal, session)
    portal.corrupt_next()
    damaged = _submit(sim, portal, session)
    assert portal.retransmits == 1
    assert damaged > clean
    s = portal.integrity.summary()
    assert s["detected"] == 1 and s["repaired"] == 1


def test_iscsi_without_digests_is_silent():
    sim = Simulator()
    portal = _portal(sim, header_digest=False, data_digest=False)
    session = portal.login("iqn.host")
    portal.corrupt_next()
    _submit(sim, portal, session)
    assert portal.retransmits == 0
    assert portal.integrity.summary()["silent"] == 1


# -- WAN payload verification ----------------------------------------------


SYNC1 = FilePolicy(replication_mode=ReplicationMode.SYNC,
                   replication_sites=1)


def _geo(sim, verify_payloads):
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 3000.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    rep = GeoReplicator(sim, net, integrity=IntegrityManager(sim),
                        verify_payloads=verify_payloads)
    rep.register("/f", SYNC1, a)
    return rep


def test_geo_payload_digest_miss_resends():
    sim = Simulator()
    rep = _geo(sim, verify_payloads=True)
    rep.corrupt_next()
    sim.run(until=rep.write("/f", mib(1)))
    assert rep.resends == 1
    assert rep.metrics.counter("wan.resends").value == 1
    s = rep.integrity.summary()
    assert s["detected"] == 1 and s["repaired"] == 1
    assert rep.files["/f"].copies == {"a", "b"}


def test_geo_without_verification_lands_silently():
    sim = Simulator()
    rep = _geo(sim, verify_payloads=False)
    rep.corrupt_next()
    sim.run(until=rep.write("/f", mib(1)))
    assert rep.resends == 0
    assert rep.integrity.summary()["silent"] == 1


# -- the geo tier of the repair chain --------------------------------------


def test_geo_tier_repairs_when_local_tiers_cannot():
    sim = Simulator()
    mc = MetadataCenter(sim, [SiteSpec("east"),
                              SiteSpec("west", (0.0, 3000.0))],
                        config=SystemConfig(
                            blade_count=4, disk_count=16,
                            disk_capacity=mib(64), seed=7,
                            integrity=True))
    mc.connect("east", "west")
    east = mc.system("east")
    east.create("/data/f")
    sim.run(until=east.write("/data/f", 0, mib(2)))
    sim.run()
    pool = east.pool
    k = pool.data_per_stripe

    # Corrupt a *parity* chunk (no cached logical block -> cache tier
    # structurally out) and fail another member of the same stripe
    # (second erasure -> parity tier out).  Only the WAN refetch is left.
    target = None
    for stripe in range(pool.stripe_count):
        members = pool.stripe_members(stripe)
        parity_disk = members[k]
        addr = pool.chunk_slot(stripe, parity_disk)
        if east.integrity.stamped_overlap(pool.disks[parity_disk].name,
                                          addr, pool.chunk_size):
            target = (stripe, parity_disk, addr, members[0])
            break
    assert target is not None
    stripe, parity_disk, addr, other_member = target
    assert east.integrity.corrupt(pool.disks[parity_disk].name, addr,
                                  pool.chunk_size, "bitrot")
    pool.disks[other_member].fail()
    pool.mark_failed(other_member)

    east.start_scrub(passes=1)
    sim.run()
    chain = east.repair_chain
    assert chain.repaired_by("geo_replica") == 1
    assert chain.repaired_by("cache_replica") == 0
    assert chain.repaired_by("raid_parity") == 0
    s = east.integrity.summary()
    assert s["repaired"] == s["detected"] == 1
    assert s["unrepairable"] == 0
