"""Cross-module property tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import make_disk_farm
from repro.raid import DeclusteredPool, RaidArray, RaidLayout, RaidLevel, coalesce
from repro.raid.layout import IoOp
from repro.sim import FairShareLink, Simulator

CHUNK = 1024

parity_levels = st.sampled_from([RaidLevel.RAID5, RaidLevel.RAID6])


class TestLayoutProperties:
    @settings(max_examples=60)
    @given(parity_levels, st.integers(4, 9), st.integers(0, 500))
    def test_chunk_addresses_bijective_within_stripe(self, level, disks, base):
        """No two logical chunks of one stripe share a physical disk, and
        none lands on a parity disk."""
        layout = RaidLayout(level, disks, CHUNK)
        d = layout.data_disks_per_stripe
        stripe_base = (base // d) * d
        addresses = [layout.chunk_address(stripe_base + q) for q in range(d)]
        homes = [a.disk for a in addresses]
        assert len(set(homes)) == d
        parity = set(layout.parity_disks(addresses[0].stripe))
        assert not set(homes) & parity

    @settings(max_examples=60)
    @given(st.sampled_from(list(RaidLevel)), st.integers(0, 300))
    def test_chunk_address_deterministic_and_in_range(self, level, chunk):
        disks = {RaidLevel.RAID0: 3, RaidLevel.RAID1: 2, RaidLevel.RAID5: 5,
                 RaidLevel.RAID6: 6, RaidLevel.RAID10: 6}[level]
        layout = RaidLayout(level, disks, CHUNK)
        a = layout.chunk_address(chunk)
        b = layout.chunk_address(chunk)
        assert a == b
        assert 0 <= a.disk < disks
        assert a.offset >= 0
        assert all(0 <= p < disks for p in a.parity_disks)

    @settings(max_examples=40)
    @given(st.integers(0, 10_000), st.integers(1, 5000))
    def test_chunks_for_range_partition(self, offset, nbytes):
        """Pieces tile the range exactly: contiguous, non-overlapping."""
        layout = RaidLayout(RaidLevel.RAID5, 5, CHUNK)
        pieces = layout.chunks_for_range(offset, nbytes)
        pos = offset
        for chunk, intra, length in pieces:
            assert chunk * CHUNK + intra == pos
            assert 0 < length <= CHUNK
            pos += length
        assert pos == offset + nbytes


class TestPlanProperties:
    @settings(max_examples=40)
    @given(parity_levels, st.integers(0, 50), st.integers(1, 4000),
           st.integers(0, 5))
    def test_degraded_plans_never_touch_failed_disks(self, level, offset,
                                                     nbytes, failed_disk):
        sim = Simulator()
        disks = make_disk_farm(sim, 6, 64 * CHUNK)
        arr = RaidArray(sim, disks, level, chunk_size=CHUNK)
        arr.mark_failed(failed_disk % 6)
        offset = offset % (arr.capacity - nbytes) if nbytes < arr.capacity \
            else 0
        nbytes = min(nbytes, arr.capacity - offset)
        for plan in (arr.read_plan(offset, nbytes),
                     arr.write_plan(offset, nbytes)):
            assert all(op.disk not in arr.failed for op in plan)

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20),
                              st.integers(1, 10),
                              st.sampled_from(["read", "write"])),
                    max_size=30))
    def test_coalesce_preserves_coverage(self, raw):
        ops = [IoOp(d, o * 10, n * 10, k) for d, o, n, k in raw]
        merged = coalesce(ops)

        def cover(ops_list):
            bytes_covered = {}
            for op in ops_list:
                key = (op.disk, op.op)
                s = bytes_covered.setdefault(key, set())
                s.update(range(op.offset, op.offset + op.nbytes))
            return bytes_covered

        assert cover(ops) == cover(merged)
        # Merged ops on one (disk, op) never overlap or touch.
        by_key: dict = {}
        for op in merged:
            by_key.setdefault((op.disk, op.op), []).append(op)
        for group in by_key.values():
            group.sort(key=lambda o: o.offset)
            for a, b in zip(group, group[1:]):
                assert a.offset + a.nbytes < b.offset


class TestDeclusterProperties:
    @settings(max_examples=30)
    @given(st.integers(8, 24), st.integers(2, 6), st.integers(0, 10_000))
    def test_members_distinct_and_spare_disjoint(self, n_disks, k, stripe):
        sim = Simulator()
        disks = make_disk_farm(sim, n_disks, 256 * 64 * 1024)
        try:
            pool = DeclusteredPool(sim, disks, data_per_stripe=k)
        except ValueError:
            return  # width too large for the farm: rejected, fine
        stripe %= pool.stripe_count
        members = pool.stripe_members(stripe)
        assert len(members) == len(set(members)) == k + 1
        failed = members[0]
        pool.mark_failed(failed)
        spare = pool.spare_target(stripe, failed)
        assert spare not in members

    @settings(max_examples=20)
    @given(st.integers(0, 2**31))
    def test_chunk_slots_within_disk(self, stripe_seed):
        sim = Simulator()
        pool = DeclusteredPool(sim, make_disk_farm(sim, 12, 128 * 64 * 1024),
                               data_per_stripe=4)
        stripe = stripe_seed % pool.stripe_count
        for disk in pool.stripe_members(stripe):
            slot = pool.chunk_slot(stripe, disk)
            assert 0 <= slot <= pool.disks[disk].capacity - pool.chunk_size


class TestLinkProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 10_000),
                              st.integers(0, 1000)), min_size=1,
                    max_size=12))
    def test_fair_share_conserves_bytes_and_respects_capacity(self, flows):
        """All transfers complete; total carried equals total offered; and
        the link never finishes faster than capacity allows."""
        sim = Simulator()
        link = FairShareLink(sim, bandwidth=1000.0)
        finished = []

        def client(nbytes, delay_ms):
            yield sim.timeout(delay_ms / 1000.0)
            yield link.transfer(float(nbytes))
            finished.append(sim.now)

        total = 0
        first_start = min(d for _n, d in flows) / 1000.0
        for nbytes, delay in flows:
            total += nbytes
            sim.process(client(nbytes, delay))
        sim.run()
        assert len(finished) == len(flows)
        assert link.total_bytes == pytest.approx(total, rel=1e-6)
        makespan = max(finished) - first_start
        assert makespan >= total / 1000.0 - 1e-6  # capacity is never beaten

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(1, 5000), min_size=2, max_size=8))
    def test_simultaneous_flows_finish_in_size_order(self, sizes):
        sim = Simulator()
        link = FairShareLink(sim, bandwidth=997.0)
        order = []

        def client(i, nbytes):
            yield link.transfer(float(nbytes))
            order.append(i)

        for i, nbytes in enumerate(sizes):
            sim.process(client(i, nbytes))
        sim.run()
        finish_sizes = [sizes[i] for i in order]
        assert finish_sizes == sorted(finish_sizes)


class TestParityPipelineProperty:
    @settings(max_examples=20)
    @given(st.integers(3, 8), st.integers(0, 2**32 - 1))
    def test_raid6_full_cycle(self, data_disks, seed):
        """Generate → lose two → recover → verify, end to end."""
        from repro.raid import raid6_pq, raid6_recover_two_data
        rng = np.random.default_rng(seed)
        blocks = [rng.integers(0, 256, 64, dtype=np.uint8)
                  for _ in range(data_disks)]
        p, q = raid6_pq(blocks)
        x, y = sorted(rng.choice(data_disks, size=2, replace=False))
        holed = [b if i not in (x, y) else None for i, b in enumerate(blocks)]
        dx, dy = raid6_recover_two_data(holed, p, q)
        assert np.array_equal(dx, blocks[x])
        assert np.array_equal(dy, blocks[y])
