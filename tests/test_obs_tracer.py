"""Tracer: span nesting, Chrome export, and byte-level determinism."""

import json

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.obs import NULL_SPAN, Severity, enable
from repro.obs.tracer import Tracer
from repro.sim.units import mib


def test_span_records_simulated_time():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        with tracer.span("outer", kind="test") as sp:
            yield sim.timeout(2.0)
            with sp.child("inner"):
                yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert len(tracer.spans) == 2
    by_name = {s.name: s for s in tracer.spans}
    outer, inner = by_name["outer"], by_name["inner"]
    assert outer.begin == 0.0 and outer.end == 3.0
    assert inner.begin == 2.0 and inner.end == 3.0
    assert inner.parent is outer
    assert inner.tid == outer.tid  # children share the root's track
    assert not tracer.nesting_violations()


def test_concurrent_roots_get_distinct_tracks():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc(delay):
        with tracer.span("op", delay=delay):
            yield sim.timeout(delay)

    sim.process(proc(1.0))
    sim.process(proc(2.0))
    sim.run()
    tids = {s.tid for s in tracer.spans}
    assert len(tids) == 2


def test_chrome_trace_is_valid_json_with_sane_events():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        with tracer.span("a", n=1) as sp:
            yield sim.timeout(0.5)
            sp.event("mark", note="hi")
            with sp.child("b"):
                yield sim.timeout(0.25)

    sim.process(proc())
    sim.run()
    doc = json.loads(tracer.to_json())
    assert "traceEvents" in doc
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(complete) == 2 and len(instants) == 1
    for ev in complete:
        assert ev["dur"] >= 0
        assert set(ev) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
    assert instants[0]["args"] == {"note": "hi"}


def test_disabled_tracer_returns_null_span():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    sp = tracer.span("anything", x=1)
    assert sp is NULL_SPAN
    with sp as inner:
        assert inner.child("nested") is NULL_SPAN
        inner.annotate(y=2).event("e")
    assert tracer.spans == []


def test_null_span_parent_treated_as_root():
    sim = Simulator()
    tracer = Tracer(sim)
    with tracer.span("root", parent=NULL_SPAN) as sp:
        pass
    assert sp.parent is None
    assert sp.tid == sp.sid


def test_max_spans_bound_drops_and_counts():
    sim = Simulator()
    tracer = Tracer(sim, max_spans=3)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans) == 3
    assert tracer.dropped == 2


def test_error_exit_annotates_span():
    sim = Simulator()
    tracer = Tracer(sim)
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert tracer.spans[0].attrs["error"] is True


def test_breakdown_aggregates_by_name():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        for _ in range(3):
            with tracer.span("stage"):
                yield sim.timeout(2.0)

    sim.process(proc())
    sim.run()
    agg = tracer.breakdown()["stage"]
    assert agg["count"] == 3
    assert agg["total_s"] == pytest.approx(6.0)
    assert agg["mean_s"] == pytest.approx(2.0)
    assert agg["max_s"] == pytest.approx(2.0)


def _traced_system_run(seed: int) -> str:
    """A quickstart-sized workload with tracing on; returns the trace JSON."""
    sim = Simulator()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        seed=seed, observability=True))
    system.start()
    system.create("/projects/results.h5")
    system.create("/scratch/tmp")

    def client():
        yield system.write("/projects/results.h5", 0, mib(2))
        yield system.read("/projects/results.h5", 0, mib(2))
        yield system.write("/scratch/tmp", 0, mib(1))
        yield system.read("/scratch/tmp", 0, mib(1))

    sim.process(client())
    sim.run(until=30.0)
    return system.trace_json()


def test_trace_determinism_same_seed_byte_identical():
    # The acceptance bar: same seed => byte-identical trace JSON.
    assert _traced_system_run(7) == _traced_system_run(7)


def test_system_trace_spans_nest_and_cover_the_stack():
    sim = Simulator()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        observability=True))
    system.start()
    system.create("/a")

    def client():
        yield system.write("/a", 0, mib(1))
        yield system.read("/a", 0, mib(1))

    sim.process(client())
    sim.run(until=30.0)
    doc = json.loads(system.trace_json())
    names = {e["name"] for e in doc["traceEvents"]}
    # The request is followed across the layers the paper's Fig. 1 stacks.
    assert {"client.write", "client.read", "cache.write", "cache.read",
            "blade.cpu"} <= names
    tracer = system.obs.tracer
    assert not tracer.nesting_violations()
    for span in tracer.spans:
        assert span.end is not None and span.begin <= span.end
    # client spans parent the per-block cache spans on the same track.
    cache_spans = [s for s in tracer.spans if s.name.startswith("cache.")]
    assert cache_spans
    assert all(s.parent is not None and s.parent.name.startswith("client.")
               for s in cache_spans
               if s.name in ("cache.read", "cache.write"))


def test_observability_off_by_default_keeps_sim_clean():
    sim = Simulator()
    NetStorageSystem(sim, SystemConfig(blade_count=2, disk_count=8,
                                       disk_capacity=mib(64)))
    assert sim.obs is None


def test_enable_helper_attaches_to_sim():
    sim = Simulator()
    obs = enable(sim, tracing=True, min_severity=Severity.WARNING)
    assert sim.obs is obs
    assert obs.log.min_severity == Severity.WARNING
