"""Scheduler-backend invariants: the calendar queue must be invisible.

``Simulator(scheduler="calendar")`` swaps the kernel's event queue from a
binary heap to a calendar queue.  The backend is performance plumbing
only — the contract here is that (1) pop order is *identical* to the
heap on every shape we can throw at it, including a full traced system
across pooling and observability combinations, (2) the wheel's internal
machinery (relayouts, overflow) engages when it should, and (3) the
backend is fixed at construction with clear errors on any attempt to
switch mid-run.
"""

import random
from heapq import heappop, heappush

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.sim import (
    SCHEDULER_BACKENDS,
    CalendarScheduler,
    HeapScheduler,
    SimulationError,
)
from repro.sim.units import mib


# ---------------------------------------------------------------------------
# Differential order identity against the heap
# ---------------------------------------------------------------------------


def _drain_both(entries):
    """Push the same entries into both backends; pop order must be
    *identity*-equal (the calendar returns the very same tuples)."""
    heap = HeapScheduler()
    cal = CalendarScheduler()
    for e in entries:
        heap.push(e)
        cal.push(e)
    assert len(cal) == len(heap) == len(entries)
    out = []
    while heap:
        h = heap.pop_min()
        c = cal.pop_min()
        assert c is h
        out.append(h)
    assert not cal
    return out


def test_calendar_matches_heap_on_random_workloads():
    rng = random.Random(20260809)
    for trial in range(60):
        n = rng.randrange(1, 400)
        entries = [(round(rng.uniform(0, rng.choice([1e-3, 1.0, 1e4])), 6),
                    seq, None, None) for seq in range(n)]
        rng.shuffle(entries)
        _drain_both(entries)


def test_calendar_fifo_tie_break_exact():
    # Many entries at the same instant: seq (insertion order) decides.
    entries = [(5.0, seq, None, None) for seq in range(500)]
    out = _drain_both(entries)
    assert [e[1] for e in out] == list(range(500))


def test_calendar_interleaved_push_pop_matches_heap():
    rng = random.Random(7)
    heap, cal = HeapScheduler(), CalendarScheduler()
    now, seq = 0.0, 0
    for _ in range(5_000):
        if heap and rng.random() < 0.45:
            h, c = heap.pop_min(), cal.pop_min()
            assert c is h
            now = h[0]
        else:
            # Kernel invariant: never schedule into the past.
            e = (now + rng.choice([0.0, 1e-9, 0.3, 7.0, 4000.0])
                 * rng.random(), seq, None, None)
            seq += 1
            heap.push(e)
            cal.push(e)
    while heap:
        assert cal.pop_min() is heap.pop_min()


# ---------------------------------------------------------------------------
# Wheel internals: resize triggers and overflow
# ---------------------------------------------------------------------------


def test_calendar_growth_relayout_triggers_on_push():
    cal = CalendarScheduler(width=1.0, nbuckets=8)
    for seq in range(64):
        cal.push((seq * 0.25, seq, None, None))
    assert cal.relayouts >= 1
    assert cal.bucket_count > 8


def test_calendar_shrink_relayout_triggers_on_drain():
    cal = CalendarScheduler()
    n = 3_000
    for seq in range(n):
        cal.push((seq * 0.01, seq, None, None))
    grown = cal.bucket_count
    assert grown >= 1024
    for _ in range(n - 2):
        cal.pop_min()
    assert cal.bucket_count < grown  # shrink fired while draining
    assert [cal.pop_min()[1] for _ in range(2)] == [n - 2, n - 1]


def test_calendar_far_future_entries_wait_in_overflow():
    cal = CalendarScheduler(width=1.0, nbuckets=8)
    cal.push((0.0, 0, None, None))
    cal.push((1e9, 1, None, None))  # far beyond the wheel horizon
    assert cal.overflow_depth == 1
    assert cal.pop_min()[1] == 0
    assert cal.pop_min()[1] == 1  # next revolution re-anchors on overflow
    assert not cal


def test_calendar_empty_reanchors_after_idle_gap():
    cal = CalendarScheduler()
    cal.push((2.0, 0, None, None))
    cal.pop_min()
    # A push far in the future after going idle must not scan stale
    # buckets: the wheel re-anchors at the new time.
    cal.push((1e6, 1, None, None))
    assert cal.peek_time() == 1e6
    assert cal.pop_min()[1] == 1


def test_scheduler_constructor_validation():
    with pytest.raises(ValueError):
        CalendarScheduler(width=0.0)
    with pytest.raises(ValueError):
        CalendarScheduler(nbuckets=0)


# ---------------------------------------------------------------------------
# Engine integration: byte-identical traces, backend selection errors
# ---------------------------------------------------------------------------


def _system_trace(scheduler: str, pooling: bool, obs: bool,
                  seed: int = 11) -> str:
    sim = Simulator(pooling=pooling, scheduler=scheduler)
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        seed=seed, observability=obs))
    system.start()
    system.create("/projects/results.h5")
    system.create("/scratch/tmp")

    def client():
        yield system.write("/projects/results.h5", 0, mib(2))
        yield system.read("/projects/results.h5", 0, mib(2))
        yield system.write("/scratch/tmp", 0, mib(1))
        yield system.read("/scratch/tmp", 0, mib(1))

    sim.process(client())
    sim.run(until=30.0)
    if not obs:
        return f"{sim.now}:{sim.events_processed}"
    return system.trace_json()


@pytest.mark.parametrize("pooling", [True, False])
@pytest.mark.parametrize("obs", [True, False])
def test_backend_traces_byte_identical(pooling, obs):
    # The tentpole determinism bar: with observability the full event
    # trace must match byte for byte; without it, the clock and event
    # count (the only observables) must match.
    assert _system_trace("heap", pooling, obs) == \
        _system_trace("calendar", pooling, obs)


def test_unknown_backend_is_a_clear_error():
    with pytest.raises(SimulationError, match="unknown scheduler backend"):
        Simulator(scheduler="splay-tree")


def test_backend_registry_names():
    assert set(SCHEDULER_BACKENDS) == {"heap", "calendar"}
    assert Simulator().scheduler == "heap"
    assert Simulator(scheduler="calendar").scheduler == "calendar"


def test_switching_backend_mid_run_raises():
    sim = Simulator(scheduler="calendar")
    with pytest.raises(SimulationError, match="fixed at construction"):
        sim.scheduler = "heap"


def test_swapped_queue_object_detected_at_run():
    # Even a forcible queue replacement (bypassing the property) is
    # caught by the run-entry assertion, naming both kinds.
    sim = Simulator(scheduler="calendar")
    sim.timeout(1.0)
    sim._queue = HeapScheduler()
    with pytest.raises(SimulationError, match="heap"):
        sim.run()
