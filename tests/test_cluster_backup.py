"""Unit tests for the distributed backup engine."""

import pytest

from repro.cluster import BackupEngine, BackupJob
from repro.sim import FairShareLink, Simulator
from repro.sim.units import mb_per_s, mib
from repro.virt import Allocator, DemandMappedDevice, StoragePool, take_snapshot

PAGE = mib(1)


def make_snapshot(pages=24):
    alloc = Allocator([StoragePool("p", 256 * PAGE, PAGE)])
    dmsd = DemandMappedDevice("vol", 1024 * PAGE, alloc)
    dmsd.write(0, pages * PAGE)
    return dmsd, take_snapshot(dmsd, "nightly")


def make_engine(sim, tape_rate=mb_per_s(200), pool_rate=mb_per_s(400)):
    pool_link = FairShareLink(sim, pool_rate, name="pool")
    tape = FairShareLink(sim, tape_rate, name="tape")
    engine = BackupEngine(sim, lambda n, prio: pool_link.transfer(n), tape)
    return engine, pool_link, tape


def run_backup(workers, pages=24):
    sim = Simulator()
    _dmsd, snap = make_snapshot(pages)
    engine, _pool, _tape = make_engine(sim)
    job = BackupJob(snap, region_pages=4)
    engine.start(job, workers=workers)
    sim.run()
    assert job.done
    return job.finished_at - job.started_at, engine


def test_backup_completes_and_counts_bytes():
    elapsed, engine = run_backup(2)
    assert elapsed > 0
    assert engine.bytes_backed_up == 24 * PAGE


def test_more_workers_back_up_faster_until_tape_saturates():
    t1, _ = run_backup(1)
    t4, _ = run_backup(4)
    assert t4 < t1
    # Beyond the tape link's capacity, workers stop helping much.
    t8, _ = run_backup(8)
    assert t8 <= t4 * 1.05


def test_empty_snapshot_is_instant():
    sim = Simulator()
    alloc = Allocator([StoragePool("p", 8 * PAGE, PAGE)])
    dmsd = DemandMappedDevice("v", 64 * PAGE, alloc)
    snap = take_snapshot(dmsd, "empty")
    engine, _p, _t = make_engine(sim)
    job = BackupJob(snap)
    assert engine.start(job, workers=2) == []
    assert job.done
    assert job.progress == 1.0


def test_worker_failure_region_returned():
    sim = Simulator()
    _dmsd, snap = make_snapshot(32)
    engine, _pool, _tape = make_engine(sim)
    job = BackupJob(snap, region_pages=8)
    workers = engine.start(job, workers=2)

    def killer():
        yield sim.timeout(0.02)
        if workers[0].is_alive:
            workers[0].interrupt("blade died")

    sim.process(killer())
    sim.run()
    assert job.done  # survivor finished the returned region
    assert job.progress == 1.0


def test_backup_consistent_despite_live_writes():
    """The snapshot freezes the page set: the backup's byte count equals
    snapshot-time state even while the live device keeps growing."""
    sim = Simulator()
    dmsd, snap = make_snapshot(8)
    engine, _pool, _tape = make_engine(sim)
    job = BackupJob(snap, region_pages=2)
    engine.start(job, workers=2)

    def writer():
        for i in range(8, 20):
            yield sim.timeout(0.01)
            dmsd.write(i * PAGE, PAGE)

    sim.process(writer())
    sim.run()
    assert engine.bytes_backed_up == 8 * PAGE  # not 20


def test_validation():
    sim = Simulator()
    _dmsd, snap = make_snapshot(4)
    engine, _p, _t = make_engine(sim)
    with pytest.raises(ValueError):
        BackupJob(snap, region_pages=0)
    with pytest.raises(ValueError):
        engine.start(BackupJob(snap), workers=0)
