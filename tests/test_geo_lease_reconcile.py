"""Epoch-fenced leases, divergence tracking, and post-heal reconciliation."""

import pytest

from repro.fs import FilePolicy, ReplicationMode
from repro.geo import (
    DisasterRecoveryCoordinator,
    EpochFencingError,
    GeoReplicator,
    ReconcileDaemon,
    Site,
    WanNetwork,
)
from repro.geo.selection import ReplicaCatalog
from repro.obs.telemetry import HealthState
from repro.sim import FAULT_EXCEPTIONS, Simulator
from repro.sim.units import gbps, mib

SYNC1 = FilePolicy(replication_mode=ReplicationMode.SYNC, replication_sites=1)
SYNC2 = FilePolicy(replication_mode=ReplicationMode.SYNC, replication_sites=2)
ASYNC1 = FilePolicy(replication_mode=ReplicationMode.ASYNC,
                    replication_sites=1)
ASYNC2 = FilePolicy(replication_mode=ReplicationMode.ASYNC,
                    replication_sites=2)


def ring(sim):
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 400.0)))
    c = net.add_site(Site(sim, "c", (0.0, 4000.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    net.connect(b, c, bandwidth=gbps(1.0))
    net.connect(a, c, bandwidth=gbps(1.0))
    return net, a, b, c


def isolate(net, site, *others):
    """Cut every fibre touching ``site`` (a one-site partition)."""
    for other in others:
        net.graph.edges[site.name, other.name]["link"].fail()


def heal(net, site, *others):
    for other in others:
        net.graph.edges[site.name, other.name]["link"].repair()


class TestLeaseAuthority:
    def test_grant_promote_and_epochs(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", ASYNC1, a)
        assert rep.leases.epoch("/f") == 1
        assert rep.leases.holder("/f") == "a"
        with pytest.raises(ValueError):
            rep.leases.grant("/f", "b")
        rep.leases.promote("/f", "b")
        assert rep.leases.epoch("/f") == 2
        assert rep.leases.holder("/f") == "b"
        assert rep.leases.fenced_holders("/f") == {"a"}

    def test_stale_epoch_rejected_and_counted(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", ASYNC1, a)
        old = rep.leases.epoch("/f")
        rep.leases.promote("/f", "b")
        with pytest.raises(EpochFencingError):
            rep.leases.check_write("/f", old)
        assert rep.leases.metrics.counter(
            "lease.stale_writes_rejected").value == 1
        # Current epoch and the epoch-less legacy shape both pass.
        rep.leases.check_write("/f", rep.leases.epoch("/f"))
        rep.leases.check_write("/f", None)

    def test_future_epoch_is_a_model_bug(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", ASYNC1, a)
        with pytest.raises(ValueError):
            rep.leases.check_write("/f", 99)

    def test_health_degraded_while_fenced(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", ASYNC1, a)
        assert rep.leases.health().state is HealthState.UP
        rep.leases.promote("/f", "b")
        assert rep.leases.health().state is HealthState.DEGRADED
        rep.leases.note_rejoined("/f", "a")
        assert rep.leases.health().state is HealthState.UP

    def test_fenced_write_never_lands_a_byte(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", ASYNC1, a)
        old = rep.leases.epoch("/f")
        rep.leases.promote("/f", "b")
        rep.files["/f"].home = "b"
        caught = []

        def proc():
            try:
                yield rep.write("/f", mib(1), epoch=old)
            except EpochFencingError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]
        assert rep.files["/f"].size == 0
        assert rep.files["/f"].version == 0


class TestDivergenceTracking:
    def test_sync_target_loss_records_divergence(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", SYNC1, a)
        outcomes = []

        def proc():
            yield rep.write("/f", mib(1))  # b gains a copy
            isolate(net, b, a, net.sites["c"])
            try:
                yield rep.write("/f", mib(2))
            except FAULT_EXCEPTIONS:
                outcomes.append("failed")

        sim.process(proc())
        sim.run()
        # The cut made b unreachable: the sync write failed visibly and
        # whatever b is now missing is on the divergence books.
        assert outcomes == ["failed"]
        assert rep.divergent_bytes_at("b") > 0
        gf = rep.files["/f"]
        assert gf.site_versions["b"] < gf.version

    def test_replica_outside_target_set_diverges(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", SYNC1, a)

        def proc():
            yield rep.write("/f", mib(1))  # replicates to b
            rep.set_policy("/f", FilePolicy())  # policy narrowed to NONE
            yield rep.write("/f", mib(3))

        sim.process(proc())
        sim.run()
        # b still holds a copy but nothing will ship the new bytes.
        assert rep.divergence[("/f", "b")] == mib(3)
        assert rep.health().state is HealthState.DEGRADED

    def test_clear_divergence_partial_then_full(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", SYNC1, a)
        gf = rep.files["/f"]
        rep._note_divergence(gf, "b", mib(4))
        rep.clear_divergence("/f", "b", mib(1))
        assert rep.divergence[("/f", "b")] == mib(3)
        rep.clear_divergence("/f", "b")
        assert ("/f", "b") not in rep.divergence
        rep.clear_divergence("/f", "b")  # idempotent on empty

    def test_catalog_staleness_includes_divergence(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", SYNC1, a)
        catalog = ReplicaCatalog()
        catalog.bind_replicator(rep)
        gf = rep.files["/f"]
        rep.async_backlog[("/f", "b")] = mib(2)
        rep._note_divergence(gf, "b", mib(3))
        assert catalog.staleness_bytes("/f", "b") == mib(5)


class TestReconcileDaemon:
    def test_heal_triggers_resync_to_zero(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        rep = GeoReplicator(sim, net)
        daemon = ReconcileDaemon(sim, net, rep, settle_delay=0.1).start()
        rep.register("/f", SYNC1, a)

        def proc():
            yield rep.write("/f", mib(1))
            isolate(net, b, a, c)
            for _ in range(3):
                try:
                    yield rep.write("/f", mib(1))
                except FAULT_EXCEPTIONS:
                    pass
            yield sim.timeout(1.0)
            assert rep.divergent_bytes_at("b") > 0
            heal(net, b, a, c)

        sim.process(proc())
        sim.run()
        gf = rep.files["/f"]
        assert rep.total_divergence() == 0
        assert gf.site_versions["b"] == gf.version
        assert "b" in gf.copies
        assert daemon.summary()["sweeps"] >= 1
        assert daemon.summary()["resynced_bytes"] > 0
        assert daemon.health().state is HealthState.UP

    def test_idle_daemon_adds_zero_kernel_events(self):
        def run(with_daemon):
            sim = Simulator()
            net, a, _b, _c = ring(sim)
            rep = GeoReplicator(sim, net)
            if with_daemon:
                ReconcileDaemon(sim, net, rep).start()
            rep.register("/f", ASYNC1, a)

            def proc():
                for _ in range(4):
                    yield rep.write("/f", mib(1))
                    yield sim.timeout(0.5)

            sim.process(proc())
            sim.run(until=30.0)
            return sim.events_processed, rep.files["/f"].version

        assert run(False) == run(True)

    def test_orphan_recovery_branch_ships_fork_home(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        rep = GeoReplicator(sim, net)
        dr = DisasterRecoveryCoordinator(sim, net, rep)
        daemon = ReconcileDaemon(sim, net, rep, settle_delay=0.1).start()
        rep.register("/f", ASYNC1, a)

        def proc():
            yield rep.write("/f", mib(4))
            yield sim.timeout(3.0)  # backlog fully drained to b
            # Cut a off first so the pump cannot race the failover: the
            # two acked writes below are deterministically stranded, and
            # the fork is strictly ahead of the surviving lineage.
            isolate(net, a, b, c)
            yield rep.write("/f", mib(1))
            yield rep.write("/f", mib(1))
            yield dr.fail_site(a)
            assert rep.orphans[("/f", "a")].nbytes == mib(2)
            heal(net, a, b, c)
            a.repair()

        p = sim.process(proc())
        sim.run(until=p)
        sim.run()
        gf = rep.files["/f"]
        assert gf.home == "b"
        assert not rep.orphans
        assert rep.total_divergence() == 0
        assert daemon.summary()["orphans_recovered"] == 1
        assert daemon.summary()["conflicts"] == 0
        assert daemon.summary()["resynced_bytes"] >= mib(2)
        # The ex-home rejoined as a current, unfenced replica.
        assert "a" in gf.copies
        assert gf.site_versions["a"] == gf.version
        assert rep.leases.fenced_holders("/f") == set()

    def test_orphan_conflict_branch_counts_lww_loss(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        rep = GeoReplicator(sim, net)
        dr = DisasterRecoveryCoordinator(sim, net, rep)
        daemon = ReconcileDaemon(sim, net, rep, settle_delay=0.1).start()
        rep.register("/f", ASYNC1, a)

        def proc():
            yield rep.write("/f", mib(4))
            yield sim.timeout(3.0)
            isolate(net, a, b, c)
            yield rep.write("/f", mib(2))  # stranded at failover
            yield dr.fail_site(a)
            # The surviving lineage writes *later*: LWW must discard the
            # fork as a counted conflict, never merge it silently.
            yield rep.write("/f", mib(1), epoch=rep.leases.epoch("/f"))
            yield sim.timeout(3.0)
            heal(net, a, b, c)
            a.repair()

        p = sim.process(proc())
        sim.run(until=p)
        sim.run()
        gf = rep.files["/f"]
        assert daemon.summary()["conflicts"] == 1
        assert daemon.summary()["orphans_recovered"] == 0
        assert not rep.orphans
        assert rep.total_divergence() == 0
        # The ex-home was overwritten by the winning lineage and rejoined.
        assert "a" in gf.copies
        assert gf.site_versions["a"] == gf.version
        assert rep.leases.fenced_holders("/f") == set()

    def test_sweep_waits_out_an_unreachable_target(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        rep = GeoReplicator(sim, net)
        daemon = ReconcileDaemon(sim, net, rep, settle_delay=0.1).start()
        rep.register("/f", SYNC1, a)

        def proc():
            yield rep.write("/f", mib(1))
            isolate(net, b, a, c)
            try:
                yield rep.write("/f", mib(2))
            except FAULT_EXCEPTIONS:
                pass
            # A sweep forced while b is still cut must leave the debt on
            # the books, not drop it.
            daemon.request_sweep()
            yield sim.timeout(1.0)
            assert rep.divergent_bytes_at("b") == mib(2)
            heal(net, b, a, c)

        sim.process(proc())
        sim.run()
        assert rep.total_divergence() == 0


class TestMetacenterEpochs:
    def _center(self, sim):
        from repro.core.config import SystemConfig
        from repro.geo.metacenter import MetadataCenter
        from repro.plan.spec import SiteSpec
        sites = [SiteSpec("east", (0.0, 0.0)),
                 SiteSpec("west", (0.0, 2500.0))]
        config = SystemConfig(blade_count=2, disk_count=6,
                              disk_capacity=64 * mib(1))
        mc = MetadataCenter(sim, sites, config=config)
        mc.connect("east", "west", bandwidth=gbps(1.0))
        return mc

    def test_write_epoch_round_trip(self):
        sim = Simulator()
        mc = self._center(sim)
        mc.create("/proj/f", home="east", policy=ASYNC1)
        assert mc.write_epoch("/proj/f") == 1

        def proc():
            yield mc.write("/proj/f", 0, mib(1),
                           epoch=mc.write_epoch("/proj/f"))

        sim.process(proc())
        sim.run(until=30.0)
        assert mc.replicator.files["/proj/f"].size == mib(1)

    def test_stale_epoch_fenced_at_the_metacenter(self):
        sim = Simulator()
        mc = self._center(sim)
        mc.create("/proj/f", home="east", policy=ASYNC1)
        caught = []

        def proc():
            stale = mc.write_epoch("/proj/f")
            yield mc.write("/proj/f", 0, mib(1), epoch=stale)
            yield sim.timeout(5.0)
            yield mc.dr.fail_site(mc.network.sites["east"])
            try:
                yield mc.write("/proj/f", 0, mib(1), epoch=stale)
            except EpochFencingError:
                caught.append(True)

        sim.process(proc())
        sim.run(until=60.0)
        assert caught == [True]
        assert mc.replicator.leases.metrics.counter(
            "lease.stale_writes_rejected").value == 1
