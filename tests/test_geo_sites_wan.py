"""Unit tests for sites and the WAN network."""

import pytest

from repro.geo import NoRouteError, Site, SiteFailedError, WanNetwork
from repro.sim import Simulator
from repro.sim.units import gbps, mb_per_s


def three_site_ring(sim):
    """Edmonton / Seattle / Boulder, roughly the paper's company map."""
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "edmonton", (0.0, 0.0)))
    b = net.add_site(Site(sim, "seattle", (0.0, 1000.0)))
    c = net.add_site(Site(sim, "boulder", (1400.0, 600.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    net.connect(b, c, bandwidth=gbps(2.5))
    net.connect(a, c, bandwidth=gbps(1.0))
    return net, a, b, c


class TestSite:
    def test_local_io_cost(self):
        sim = Simulator()
        site = Site(sim, "s", storage_bandwidth=mb_per_s(100),
                    storage_latency=0.004)

        def proc():
            yield site.store_write(10**8)  # 1s of transfer
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(1.004)
        assert site.bytes_written == 10**8

    def test_failed_site_rejects_io(self):
        sim = Simulator()
        site = Site(sim, "s")
        site.fail()
        caught = []

        def proc():
            try:
                yield site.store_read(1000)
            except SiteFailedError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]
        site.repair()
        assert not site.failed

    def test_distance(self):
        sim = Simulator()
        a = Site(sim, "a", (0.0, 0.0))
        b = Site(sim, "b", (300.0, 400.0))
        assert a.distance_to(b) == pytest.approx(500.0)


class TestWanNetwork:
    def test_direct_route(self):
        sim = Simulator()
        net, a, b, _c = three_site_ring(sim)
        links = net.route(a, b)
        assert len(links) == 1
        assert links[0].distance_km == pytest.approx(1000.0)

    def test_rtt_scales_with_distance(self):
        sim = Simulator()
        net, a, b, c = three_site_ring(sim)
        assert net.rtt(a, c) > net.rtt(a, b)
        # 1000 km one-way ≈ 5ms propagation + equipment.
        assert net.rtt(a, b) == pytest.approx(2 * (1000 / 200_000 + 0.0002))

    def test_transfer_time(self):
        sim = Simulator()
        net, a, b, _c = three_site_ring(sim)

        def proc():
            yield net.transfer(a, b, gbps(2.5) * 2.0)  # 2s of link time
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(2.0, rel=0.02)

    def test_routing_around_failed_site(self):
        sim = Simulator()
        net, a, b, c = three_site_ring(sim)
        # Kill the direct a-c fibre's cheaper alternative: fail b.
        b.fail()
        links = net.route(a, c)
        assert len(links) == 1  # direct a<->c still works
        assert {links[0].a.name, links[0].b.name} == {"edmonton", "boulder"}

    def test_multihop_route_when_direct_missing(self):
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a", (0, 0)))
        b = net.add_site(Site(sim, "b", (0, 500)))
        c = net.add_site(Site(sim, "c", (0, 1000)))
        net.connect(a, b)
        net.connect(b, c)
        assert len(net.route(a, c)) == 2

    def test_no_route_when_cut(self):
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a", (0, 0)))
        b = net.add_site(Site(sim, "b", (0, 500)))
        c = net.add_site(Site(sim, "c", (0, 1000)))
        net.connect(a, b)
        net.connect(b, c)
        b.fail()
        with pytest.raises(NoRouteError):
            net.route(a, c)

    def test_failed_endpoint_rejected(self):
        sim = Simulator()
        net, a, b, _c = three_site_ring(sim)
        a.fail()
        with pytest.raises(NoRouteError):
            net.route(a, b)

    def test_duplicate_site_rejected(self):
        sim = Simulator()
        net = WanNetwork(sim)
        net.add_site(Site(sim, "a"))
        with pytest.raises(ValueError):
            net.add_site(Site(sim, "a"))

    def test_connect_requires_membership(self):
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a"))
        stranger = Site(sim, "x")
        with pytest.raises(ValueError):
            net.connect(a, stranger)

    def test_neighbors_by_distance_with_floor(self):
        sim = Simulator()
        net, a, b, c = three_site_ring(sim)
        near_first = net.neighbors_by_distance(a)
        assert [s.name for s in near_first] == ["seattle", "boulder"]
        far_only = net.neighbors_by_distance(a, min_distance_km=1200.0)
        assert [s.name for s in far_only] == ["boulder"]
        b.fail()
        assert all(s.name != "seattle"
                   for s in net.neighbors_by_distance(a))
