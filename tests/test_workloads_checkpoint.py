"""Unit + integration tests for the HPC checkpoint workload."""

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.sim import FairShareLink
from repro.sim.units import mb_per_s, mib
from repro.workloads import CheckpointWorkload


def link_backed(sim, bandwidth):
    link = FairShareLink(sim, bandwidth, name="burst")
    return lambda rank, nbytes: link.transfer(nbytes)


def test_rounds_and_accounting():
    sim = Simulator()
    wl = CheckpointWorkload(sim, link_backed(sim, mb_per_s(1000)),
                            ranks=8, bytes_per_rank=mib(4),
                            compute_time=10.0, checkpoints=3)
    wl.run()
    sim.run()
    assert wl.checkpoint_times.count == 3
    assert wl.total_compute == pytest.approx(30.0)
    assert wl.finished_at > 30.0
    assert 0.9 < wl.efficiency() < 1.0


def test_checkpoint_time_matches_burst_bandwidth():
    """8 ranks × 4 MiB through a 100 MB/s path ≈ 0.34 s per barrier."""
    sim = Simulator()
    wl = CheckpointWorkload(sim, link_backed(sim, mb_per_s(100)),
                            ranks=8, bytes_per_rank=mib(4),
                            compute_time=5.0, checkpoints=2)
    wl.run()
    sim.run()
    expected = 8 * mib(4) / mb_per_s(100)
    assert wl.checkpoint_times.mean() == pytest.approx(expected, rel=0.05)


def test_slower_storage_hurts_efficiency():
    def efficiency(bandwidth):
        sim = Simulator()
        wl = CheckpointWorkload(sim, link_backed(sim, bandwidth),
                                ranks=16, bytes_per_rank=mib(8),
                                compute_time=5.0, checkpoints=3)
        wl.run()
        sim.run()
        return wl.efficiency()

    assert efficiency(mb_per_s(2000)) > efficiency(mb_per_s(100))


def test_against_full_netstorage_stack():
    """Checkpoint bursts absorbed by the write-back cache: the barrier
    costs cache-absorb time, not disk time."""
    sim = Simulator()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=12, disk_capacity=mib(128),
        cache_bytes_per_blade=mib(32), replication=2))
    system.start()
    for rank in range(8):
        system.create(f"/ckpt/rank{rank}")

    def write(rank, nbytes):
        inode = system.pfs.open(f"/ckpt/rank{rank}")
        return system.write(f"/ckpt/rank{rank}", inode.size, nbytes)

    wl = CheckpointWorkload(sim, write, ranks=8, bytes_per_rank=mib(2),
                            compute_time=2.0, checkpoints=3)
    wl.run()
    sim.run(until=60.0)
    assert wl.checkpoint_times.count == 3
    # Write-back absorb: barriers complete in well under a second.
    assert wl.checkpoint_times.mean() < 0.5
    assert wl.efficiency() > 0.9


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CheckpointWorkload(sim, lambda r, n: sim.timeout(0), ranks=0,
                           bytes_per_rank=1, compute_time=1, checkpoints=1)
    with pytest.raises(ValueError):
        CheckpointWorkload(sim, lambda r, n: sim.timeout(0), ranks=1,
                           bytes_per_rank=0, compute_time=1, checkpoints=1)
