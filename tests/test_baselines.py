"""Unit tests for the traditional-storage baselines."""

import pytest

from repro.baseline import (
    DualControllerArray,
    IslandFarm,
    MirrorSplitReplicator,
    PartitionedCacheArray,
    StorageIsland,
    ThickProvisioner,
    replay_thin,
    replicated_farm_costs,
    shared_pool_costs,
)
from repro.hardware import ControllerBlade
from repro.sim import Simulator
from repro.sim.units import gb, gbps, mib


class TestStorageIsland:
    def test_read_miss_then_hit(self):
        sim = Simulator()
        island = StorageIsland(sim, 0, disks=[], disk_latency=0.008)

        def proc():
            a = yield island.read("k")
            b = yield island.read("k")
            return (a, b)

        p = sim.process(proc())
        sim.run()
        assert p.value == ("disk", "cache")

    def test_requires_disks_or_model(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            StorageIsland(sim, 0, disks=[])

    def test_farm_static_placement(self):
        sim = Simulator()
        islands = [StorageIsland(sim, i, disks=[], disk_latency=0.008)
                   for i in range(4)]
        farm = IslandFarm(sim, islands)
        # Placement is deterministic and exclusive.
        home1 = farm.home_of("vol-a")
        home2 = farm.home_of("vol-a")
        assert home1 is home2

    def test_hot_volume_creates_imbalance(self):
        sim = Simulator()
        islands = [StorageIsland(sim, i, disks=[], disk_latency=0.001)
                   for i in range(4)]
        farm = IslandFarm(sim, islands)

        def proc():
            for i in range(100):
                yield farm.read("hot-volume", i % 3)  # one island hammered

        sim.process(proc())
        sim.run()
        assert farm.imbalance() == pytest.approx(4.0)  # all on one of four


class TestDualController:
    def test_first_failure_survivable(self):
        sim = Simulator()
        array = DualControllerArray(sim, active_active=True)

        def proc():
            yield array.write("k1")
            salvaged, lost = array.fail_controller(0)
            return (salvaged, lost)

        p = sim.process(proc())
        sim.run()
        assert p.value == (1, 0)
        assert array.lost_dirty_blocks == []

    def test_second_failure_loses_dirty_data(self):
        sim = Simulator()
        array = DualControllerArray(sim, active_active=True)

        def proc():
            yield array.write("k1")
            yield array.write("k2")
            array.fail_controller(0)
            _s, lost = array.fail_controller(1)
            return lost

        p = sim.process(proc())
        sim.run()
        assert p.value == 2
        assert len(array.lost_dirty_blocks) == 2

    def test_active_passive_failover_outage(self):
        sim = Simulator()
        array = DualControllerArray(sim, active_active=False,
                                    failover_time=30.0)

        def proc():
            yield sim.timeout(10.0)
            array.fail_controller(0)  # active dies: trespass begins
            assert not array.serving
            yield sim.timeout(31.0)
            assert array.serving  # standby took over
            yield sim.timeout(59.0)

        sim.process(proc())
        sim.run()
        # 30s outage in 100s => 70% availability.
        assert array.availability() == pytest.approx(0.7, abs=0.02)

    def test_active_active_no_failover_outage(self):
        sim = Simulator()
        array = DualControllerArray(sim, active_active=True)

        def proc():
            yield sim.timeout(10.0)
            array.fail_controller(0)
            assert array.serving
            yield sim.timeout(90.0)

        sim.process(proc())
        sim.run()
        assert array.availability() == pytest.approx(1.0)

    def test_destage_clears_dirty(self):
        sim = Simulator()
        array = DualControllerArray(sim)

        def proc():
            yield array.write("k")
            yield array.destage("k")

        sim.process(proc())
        sim.run()
        assert not array.dirty

    def test_write_during_failover_rejected(self):
        sim = Simulator()
        array = DualControllerArray(sim, active_active=False)
        caught = []

        def proc():
            array.fail_controller(0)
            try:
                yield array.write("k")
            except RuntimeError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]


class TestThickProvisioning:
    def demands(self):
        return {
            "a": [100, 120, 150, 400, 420],
            "b": [50, 55, 60, 65, 70],
        }

    def test_thick_burns_admin_ops_and_slack(self):
        outcome = ThickProvisioner(initial_headroom=2.0).replay(self.demands())
        assert outcome.admin_operations >= 1  # tenant a's burst forced a resize
        assert outcome.slack_fraction > 0.3
        assert outcome.peak_provisioned > outcome.peak_used

    def test_thin_has_no_admin_ops_or_slack(self):
        outcome = replay_thin(self.demands())
        assert outcome.admin_operations == 0
        assert outcome.slack_fraction == 0.0
        assert outcome.peak_provisioned == outcome.peak_used

    def test_validation(self):
        with pytest.raises(ValueError):
            ThickProvisioner(initial_headroom=0.5)
        with pytest.raises(ValueError):
            ThickProvisioner().replay({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            replay_thin({"a": [1, 2], "b": [1]})


class TestMirrorSplit:
    def test_rpo_shrinks_after_first_sync(self):
        sim = Simulator()
        rep = MirrorSplitReplicator(sim, volume_bytes=gb(1),
                                    wan_bandwidth=gbps(1) / 8,
                                    period=100.0)
        rep.start()
        # Before any sync completes, RPO is the whole history.
        assert rep.rpo_at(50.0) == 50.0
        sim.run(until=1000.0)
        assert rep.cycles >= 1
        rpo = rep.rpo_at(sim.now)
        assert rpo < sim.now
        # But still at least a full period + copy time of exposure.
        assert rpo >= rep.copy_time

    def test_storage_multiple(self):
        sim = Simulator()
        rep = MirrorSplitReplicator(sim, gb(1), gbps(1), 60.0)
        assert rep.storage_required() == 4 * gb(1)
        assert rep.wan_bytes_per_period() == gb(1)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MirrorSplitReplicator(sim, 0, gbps(1), 60.0)


class TestPartitionedCache:
    def test_static_home_and_imbalance(self):
        sim = Simulator()
        blades = [ControllerBlade(sim, i, cache_bytes=mib(1))
                  for i in range(4)]
        pc = PartitionedCacheArray(sim, blades,
                                   lambda k, n: sim.timeout(0.005))

        def proc():
            for _ in range(40):
                yield pc.read(("hot", 1))

        sim.process(proc())
        sim.run()
        assert pc.imbalance() == pytest.approx(4.0)
        # Hot key's effective cache is one blade's worth.
        assert pc.effective_cache_for(("hot", 1)) == mib(1) // (64 * 1024)

    def test_hit_after_miss(self):
        sim = Simulator()
        blades = [ControllerBlade(sim, 0)]
        pc = PartitionedCacheArray(sim, blades,
                                   lambda k, n: sim.timeout(0.005))

        def proc():
            a = yield pc.read("k")
            b = yield pc.read("k")
            return (a, b)

        p = sim.process(proc())
        sim.run()
        assert p.value == ("disk", "cache")


class TestWebFarm:
    def test_shared_pool_cheaper_and_coherent(self):
        replicated = replicated_farm_costs(8, gb(500), mib(100))
        shared = shared_pool_costs(8, gb(500), mib(100))
        assert shared.storage_bytes < replicated.storage_bytes / 4
        assert shared.update_write_bytes < replicated.update_write_bytes
        assert shared.consistency_window == 0.0
        assert replicated.consistency_window > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            replicated_farm_costs(0, gb(1), mib(1))
        with pytest.raises(ValueError):
            shared_pool_costs(0, gb(1), mib(1))
