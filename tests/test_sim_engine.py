"""Unit tests for the DES kernel: events, processes, run loop."""

import pytest

from repro.sim import (
    ConditionError,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_empty_run_terminates_immediately():
    sim = Simulator()
    sim.run()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.5)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 2.5
    assert sim.now == 2.5


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(3.0, "c"))
    sim.process(proc(1.0, "a"))
    sim.process(proc(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    fired = []

    def proc():
        while True:
            yield sim.timeout(1.0)
            fired.append(sim.now)

    sim.process(proc())
    sim.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_past_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)

    sim.process(proc())
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return 42

    p = sim.process(proc())
    assert sim.run(until=p) == 42


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    orphan = sim.event()

    def proc():
        yield sim.timeout(1.0)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run(until=orphan)


def test_process_waits_on_manual_event():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(4.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(4.0, "open")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_waits_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    p = sim.process(parent())
    sim.run()
    assert p.value == (2.0, "done")


def test_all_of_barrier():
    sim = Simulator()

    def parent():
        evs = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
        results = yield sim.all_of(evs)
        return (sim.now, sorted(results.values()))

    p = sim.process(parent())
    sim.run()
    assert p.value == (3.0, [1.0, 2.0, 3.0])


def test_any_of_race():
    sim = Simulator()

    def parent():
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        results = yield sim.any_of([slow, fast])
        return (sim.now, list(results.values()))

    p = sim.process(parent())
    sim.run()
    assert p.value == (1.0, ["fast"])


def test_condition_operators():
    sim = Simulator()

    def parent():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        yield a & b
        return sim.now

    p = sim.process(parent())
    sim.run()
    assert p.value == 2.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def parent():
        yield sim.all_of([])
        return sim.now

    p = sim.process(parent())
    sim.run()
    assert p.value == 0.0


def test_all_of_propagates_failure():
    sim = Simulator()
    bad = sim.event()
    caught = []

    def parent():
        try:
            yield sim.all_of([sim.timeout(5.0), bad])
        except ConditionError:
            caught.append(sim.now)

    def failer():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("nope"))

    sim.process(parent())
    sim.process(failer())
    sim.run()
    assert caught == [1.0]


def test_interrupt_delivered_as_exception():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def attacker(victim_proc):
        yield sim.timeout(3.0)
        victim_proc.interrupt("failure-injection")

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert log == [(3.0, "failure-injection")]


def test_interrupt_then_process_continues():
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        return sim.now

    def attacker(victim_proc):
        yield sim.timeout(2.0)
        victim_proc.interrupt()

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert v.value == 3.0


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_wait_detaches_from_event():
    """After an interrupt, the original event must not re-resume the process."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            log.append(("interrupted", sim.now))
        yield sim.timeout(20.0)
        log.append(("resumed", sim.now))

    def attacker(victim_proc):
        yield sim.timeout(5.0)
        victim_proc.interrupt()

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    # If detach failed, the t=10 timeout would wake the process early.
    assert log == [("interrupted", 5.0), ("resumed", 25.0)]


def test_process_crash_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def crasher():
        yield sim.timeout(1.0)
        raise ValueError("model bug")

    def parent():
        try:
            yield sim.process(crasher())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["model bug"]


def test_unwatched_process_crash_raises_out_of_run():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise ValueError("unhandled model bug")

    sim.process(crasher())
    with pytest.raises(ValueError):
        sim.run()


def test_process_yielding_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")

    def proc():
        yield sim.timeout(7.0)

    sim.process(proc())
    # Process start event is scheduled at t=0.
    assert sim.peek() == 0.0
    sim.step()
    assert sim.peek() == 7.0


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError, match="no events queued"):
        sim.step()


def test_step_on_drained_queue_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.step()
    with pytest.raises(SimulationError, match="no events queued"):
        sim.step()


def test_run_until_past_last_event_lands_on_horizon():
    sim = Simulator()
    fired = []
    sim.timeout(2.0).add_callback(lambda ev: fired.append(sim.now))
    sim.run(until=10.0)  # horizon far beyond the last queued event
    assert fired == [2.0]
    assert sim.now == 10.0
    assert sim.peek() == float("inf")


def test_run_until_time_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=4.5)  # nothing queued at all
    assert sim.now == 4.5
    sim.run(until=4.5)  # same-instant rerun is a no-op, not an error
    assert sim.now == 4.5
