"""Integration tests: the MetadataCenter (full stacks at every site)."""

import pytest

from repro.core import SystemConfig
from repro.fs import FilePolicy, ReplicationMode
from repro.geo import MetadataCenter
from repro.plan import SiteSpec
from repro.sim import Simulator
from repro.sim.units import gbps, mib

SYNC1 = FilePolicy(replication_mode=ReplicationMode.SYNC, replication_sites=1)


def small_config():
    return SystemConfig(blade_count=2, disk_count=8, disk_capacity=mib(64),
                        cache_bytes_per_blade=mib(8), replication=2)


def make_center(sim):
    center = MetadataCenter(sim, [
        SiteSpec("edmonton", (0.0, 0.0)),
        SiteSpec("seattle", (150.0, -1100.0)),
        SiteSpec("boulder", (1400.0, -1500.0)),
    ], config=small_config())
    center.connect("edmonton", "seattle", bandwidth=gbps(2.5))
    center.connect("seattle", "boulder", bandwidth=gbps(1.0))
    center.connect("edmonton", "boulder", bandwidth=gbps(0.622))
    return center


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        MetadataCenter(sim, [SiteSpec("only")])


def test_create_and_local_write_read():
    sim = Simulator()
    center = make_center(sim)
    center.create("/proj/data", home="edmonton", policy=SYNC1)

    def client():
        yield center.write("/proj/data", 0, mib(1))
        got = yield center.read("/proj/data", 0, mib(1), at="edmonton")
        return got

    p = sim.process(client())
    sim.run(until=p)
    assert p.value == mib(1)
    # The sync replica landed at the nearest site (seattle).
    assert center.replicator.files["/proj/data"].copies == {"edmonton",
                                                            "seattle"}


def test_sync_write_ack_includes_wan():
    sim = Simulator()
    center = make_center(sim)
    center.create("/sync", home="edmonton", policy=SYNC1)
    center.create("/plain", home="edmonton", policy=FilePolicy())

    def client():
        t0 = sim.now
        yield center.write("/plain", 0, mib(1))
        plain = sim.now - t0
        t0 = sim.now
        yield center.write("/sync", 0, mib(1))
        synced = sim.now - t0
        return plain, synced

    p = sim.process(client())
    sim.run(until=p)
    plain, synced = p.value
    assert synced > plain + center.network.rtt(
        center.site("edmonton"), center.site("seattle")) * 0.9


def test_remote_read_migrates_then_serves_locally():
    sim = Simulator()
    center = make_center(sim)
    center.create("/atlas", home="edmonton")

    def client():
        yield center.write("/atlas", 0, 4 * mib(1))
        t0 = sim.now
        yield center.read("/atlas", 0, mib(1), at="boulder")
        first = sim.now - t0
        t0 = sim.now
        yield center.read("/atlas", 0, mib(1), at="boulder")
        second = sim.now - t0
        return first, second

    p = sim.process(client())
    sim.run(until=p)
    first, second = p.value
    assert second < first  # migrated copy serves locally


def test_write_from_remote_site_forwards_to_home():
    sim = Simulator()
    center = make_center(sim)
    center.create("/f", home="edmonton")

    def client():
        t0 = sim.now
        yield center.write("/f", 0, mib(1), at="boulder")
        return sim.now - t0

    p = sim.process(client())
    sim.run(until=p)
    # Forwarding Boulder->Edmonton crosses the slow OC-12: >= transfer time.
    assert p.value > mib(1) / (gbps(0.622))


def test_site_disaster_fails_over_and_survivors_serve():
    sim = Simulator()
    center = make_center(sim)
    center.create("/critical", home="edmonton", policy=SYNC1)
    center.create("/scratch", home="edmonton")

    def client():
        yield center.write("/critical", 0, mib(1))
        yield center.write("/scratch", 0, mib(1))
        report = yield center.fail_site("edmonton")
        # Post-disaster: the replicated file still accepts writes at its
        # new home.
        yield center.write("/critical", 0, mib(1))
        return report

    p = sim.process(client())
    sim.run(until=p)
    report = p.value
    assert report.lost_files == 1  # /scratch had no replica
    assert report.new_homes["/critical"] == "seattle"
    assert center.replicator.files["/critical"].home == "seattle"


def test_report_aggregates_sites():
    sim = Simulator()
    center = make_center(sim)
    center.create("/f", home="seattle")
    report = center.report()
    assert report["files"] == 1.0
    assert "edmonton.cluster.availability" in report
    assert "boulder.balancer.imbalance" in report


def test_encrypted_tunnel_rate():
    """§5.1: hardware-encrypted tunnels run at wire speed; a software
    tunnel is throttled by the cipher rate."""
    sim = Simulator()
    from repro.geo import Site, WanNetwork
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 500.0)))
    hw = net.connect(a, b, bandwidth=gbps(2.5), encrypted=True,
                     crypto_mode="hardware")
    assert hw.bandwidth == pytest.approx(gbps(2.5))
    sim2 = Simulator()
    net2 = WanNetwork(sim2)
    a2 = net2.add_site(Site(sim2, "a", (0.0, 0.0)))
    b2 = net2.add_site(Site(sim2, "b", (0.0, 500.0)))
    sw = net2.connect(a2, b2, bandwidth=gbps(2.5), encrypted=True,
                      crypto_mode="software")
    assert sw.bandwidth < gbps(2.5) / 2  # cipher-bound
    assert sw.encrypted and sw.crypto_mode == "software"
