"""Unit tests for host-attach transport profiles."""

import pytest

from repro.protocols import (
    ALL_TRANSPORTS,
    DAFS_TRANSPORT,
    FC_TRANSPORT,
    INFINIBAND_VI_TRANSPORT,
    TCP_IP_TRANSPORT,
    TransportEndpoint,
)
from repro.sim import Simulator
from repro.sim.units import gbps, mib


def test_profiles_cover_paper_transports():
    names = {p.name for p in ALL_TRANSPORTS}
    assert names == {"fc", "tcp-ip", "infiniband-vi", "dafs"}


def test_tcp_burns_most_host_cpu():
    per_byte = {p.name: p.host_cpu_per_byte for p in ALL_TRANSPORTS}
    assert per_byte["tcp-ip"] > 10 * per_byte["infiniband-vi"]
    assert per_byte["tcp-ip"] > 10 * per_byte["fc"]
    assert per_byte["dafs"] < 2 * per_byte["infiniband-vi"]


def test_endpoint_transfer_accounts_time_and_cpu():
    sim = Simulator()
    ep = TransportEndpoint(sim, TCP_IP_TRANSPORT, wire_bandwidth=gbps(1))

    def proc():
        yield ep.transfer(mib(1))
        return sim.now

    p = sim.process(proc())
    sim.run()
    wire = mib(1) / gbps(1)
    assert p.value > wire  # protocol cost on top of the wire
    assert ep.host_cpu_seconds == pytest.approx(
        mib(1) * TCP_IP_TRANSPORT.host_cpu_per_byte)
    assert ep.ops >= 1


def test_large_transfers_fragment_at_max_payload():
    sim = Simulator()
    ep = TransportEndpoint(sim, FC_TRANSPORT, wire_bandwidth=gbps(2))

    def proc():
        yield ep.transfer(3 * FC_TRANSPORT.max_payload)

    sim.process(proc())
    sim.run()
    assert ep.ops == 3


def test_rdma_transports_deliver_higher_effective_rate():
    sim = Simulator()
    wire = gbps(1)
    rates = {p.name: TransportEndpoint(sim, p, wire).effective_rate(mib(1))
             for p in ALL_TRANSPORTS}
    assert rates["infiniband-vi"] > rates["tcp-ip"]
    assert rates["dafs"] > rates["tcp-ip"]
    # All are below the raw wire rate.
    assert all(r < wire for r in rates.values())


def test_zero_byte_and_validation():
    sim = Simulator()
    ep = TransportEndpoint(sim, DAFS_TRANSPORT, wire_bandwidth=gbps(1))

    def proc():
        got = yield ep.transfer(0)
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == 0
    with pytest.raises(ValueError):
        ep.transfer(-1)
    with pytest.raises(ValueError):
        TransportEndpoint(sim, INFINIBAND_VI_TRANSPORT, wire_bandwidth=0)
