"""The spec family: JSON round-trips, strictness, and validation paths."""

import json

import pytest

from repro.core import SystemConfig
from repro.faults import FaultKind, FaultPlan
from repro.plan import (ClusterSpec, LinkSpec, ScenarioSpec, SiteSpec,
                        SpecError, WorkloadSpec)
from repro.sim.units import gbps, mib


# -- ClusterSpec: the sparse SystemConfig overlay ------------------------------


def test_cluster_spec_overrides_only_set_fields():
    spec = ClusterSpec(blade_count=8, replication=3)
    assert spec.overrides() == {"blade_count": 8, "replication": 3}
    assert ClusterSpec().overrides() == {}


def test_cluster_spec_merge_site_wins_fieldwise():
    base = ClusterSpec(blade_count=8, disk_count=32)
    site = ClusterSpec(blade_count=2)
    merged = base.merged(site)
    assert merged.blade_count == 2       # site override wins
    assert merged.disk_count == 32       # base field survives
    assert base.merged(None) is base


def test_cluster_spec_tracks_system_config_fields():
    # Every ClusterSpec field must be a real SystemConfig field, or the
    # overlay silently drops overrides.
    config_fields = set(SystemConfig.__dataclass_fields__)
    for name in ClusterSpec.__dataclass_fields__:
        assert name in config_fields


def test_cluster_spec_rejects_unknown_fields_with_path():
    with pytest.raises(SpecError) as exc:
        ClusterSpec.from_dict({"blade_cuont": 4}, context="sites[2].cluster")
    assert "sites[2].cluster" in str(exc.value)
    assert "blade_cuont" in str(exc.value)
    assert exc.value.path == "sites[2].cluster"


# -- SiteSpec / LinkSpec / WorkloadSpec ----------------------------------------


def test_site_spec_validates_and_normalizes():
    site = SiteSpec("edmonton", (1, 2))
    assert site.position == (1.0, 2.0)
    with pytest.raises(ValueError):
        SiteSpec("")


def test_site_spec_from_dict_bad_position_path():
    with pytest.raises(SpecError) as exc:
        SiteSpec.from_dict({"name": "a", "position": [1]}, context="sites[0]")
    assert exc.value.path == "sites[0].position"


def test_site_spec_requires_name():
    with pytest.raises(SpecError) as exc:
        SiteSpec.from_dict({"position": [0, 0]})
    assert "missing required field 'name'" in str(exc.value)


def test_link_spec_validation():
    with pytest.raises(ValueError):
        LinkSpec("a", "a")
    with pytest.raises(ValueError):
        LinkSpec("a", "b", bandwidth=0)
    with pytest.raises(SpecError) as exc:
        LinkSpec.from_dict({"a": "x", "b": "y", "bandwdith": 1}, "links[3]")
    assert exc.value.path == "links[3]"


def test_workload_spec_validation_wrapped_with_path():
    with pytest.raises(ValueError):
        WorkloadSpec(clients=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(geo_mode="maybe")
    with pytest.raises(SpecError) as exc:
        WorkloadSpec.from_dict({"period_s": 0}, context="scenario.workload")
    assert str(exc.value).startswith("scenario.workload:")


# -- ScenarioSpec serialization ------------------------------------------------


def full_spec():
    plan = (FaultPlan(seed=9)
            .add(30.0, FaultKind.SITE_LOSS, "east", duration=120.0))
    return ScenarioSpec(
        name="rt", seed=11, horizon_s=900.0,
        cluster=ClusterSpec(blade_count=2, disk_count=8,
                            disk_capacity=mib(64)),
        sites=(SiteSpec("east"),
               SiteSpec("west", (0.0, 1000.0), ClusterSpec(blade_count=3))),
        links=(LinkSpec("east", "west", bandwidth=gbps(1.0),
                        encrypted=False),),
        workload=WorkloadSpec(clients=3, op_bytes=mib(2)),
        faults=plan, observability=True)


def test_scenario_spec_json_round_trip_identity():
    spec = full_spec()
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert again.to_json() == spec.to_json()


def test_scenario_spec_normalizes_live_fault_plan():
    spec = full_spec()
    # The builder-convenience FaultPlan was canonicalized to its JSON doc.
    assert isinstance(spec.faults, dict)
    assert spec.faults["seed"] == 9
    assert spec.faults["faults"][0]["target"] == "east"


def test_scenario_spec_unknown_field_rejected_with_known_list():
    doc = json.loads(full_spec().to_json())
    doc["sutes"] = []
    with pytest.raises(SpecError) as exc:
        ScenarioSpec.from_dict(doc)
    assert "'sutes'" in str(exc.value)
    assert "known fields" in str(exc.value)


def test_scenario_spec_nested_unknown_fields_carry_full_path():
    doc = json.loads(full_spec().to_json())
    doc["sites"][1]["cluster"]["blade_cnt"] = 4
    with pytest.raises(SpecError) as exc:
        ScenarioSpec.from_dict(doc)
    assert exc.value.path == "scenario.sites[1].cluster"
    doc = json.loads(full_spec().to_json())
    doc["links"][0]["crypto"] = True
    with pytest.raises(SpecError) as exc:
        ScenarioSpec.from_dict(doc)
    assert exc.value.path == "scenario.links[0]"


def test_scenario_spec_sites_must_be_a_list():
    with pytest.raises(SpecError) as exc:
        ScenarioSpec.from_dict({"sites": "site0"})
    assert exc.value.path == "scenario.sites"


def test_scenario_spec_defaults_round_trip():
    spec = ScenarioSpec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec
