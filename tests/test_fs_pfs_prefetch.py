"""Unit tests for the parallel file system and prefetcher."""

import pytest

from repro.fs import (
    CRITICAL,
    FilePolicy,
    FsError,
    ParallelFileSystem,
    PolicyLimits,
    SequentialPrefetcher,
)
from repro.virt import Allocator, StoragePool

PAGE = 64 * 1024


def make_pfs(blades=(0, 1, 2, 3), pages=1024, **kw):
    alloc = Allocator([StoragePool("main", pages * PAGE, PAGE)])
    return ParallelFileSystem(alloc, list(blades), stripe_unit=PAGE, **kw)


class TestPfsLifecycle:
    def test_create_open_write(self):
        pfs = make_pfs()
        pfs.namespace.mkdir("/data")
        pfs.create("/data/run1.h5")
        pfs.write("/data/run1.h5", 0, 3 * PAGE)
        inode = pfs.open("/data/run1.h5")
        assert inode.size == 3 * PAGE
        assert inode.mapped_bytes() == 3 * PAGE

    def test_sparse_file_maps_less_than_size(self):
        pfs = make_pfs()
        pfs.create("/sparse")
        pfs.write("/sparse", 100 * PAGE, PAGE)  # write far past start
        inode = pfs.open("/sparse")
        assert inode.size == 101 * PAGE
        assert inode.mapped_bytes() == PAGE

    def test_unlink_frees_space(self):
        pfs = make_pfs()
        pfs.create("/f")
        pfs.write("/f", 0, 5 * PAGE)
        assert pfs.allocator.used_bytes == 5 * PAGE
        pfs.unlink("/f")
        assert pfs.allocator.used_bytes == 0

    def test_truncate_reclaims(self):
        pfs = make_pfs()
        pfs.create("/f")
        pfs.write("/f", 0, 4 * PAGE)
        pfs.truncate("/f", PAGE)
        inode = pfs.open("/f")
        assert inode.size == PAGE
        assert inode.mapped_bytes() == PAGE

    def test_open_directory_rejected(self):
        pfs = make_pfs()
        pfs.namespace.mkdir("/d")
        with pytest.raises(FsError):
            pfs.open("/d")

    def test_total_mapped_bytes(self):
        pfs = make_pfs()
        pfs.create("/a")
        pfs.create("/b")
        pfs.write("/a", 0, PAGE)
        pfs.write("/b", 0, 2 * PAGE)
        assert pfs.total_mapped_bytes() == 3 * PAGE


class TestPolicyIntegration:
    def test_policy_clamped_at_create(self):
        pfs = make_pfs(limits=PolicyLimits(max_write_fault_tolerance=2))
        inode = pfs.create("/f", policy=CRITICAL)  # asks for 3
        assert inode.policy.write_fault_tolerance == 2

    def test_set_policy_any_time(self):
        pfs = make_pfs()
        pfs.create("/f")
        effective = pfs.set_policy("/f", CRITICAL)
        assert pfs.open("/f").policy == effective == CRITICAL

    def test_files_with_policy_query(self):
        pfs = make_pfs()
        pfs.create("/important", policy=CRITICAL)
        pfs.create("/scratch")
        from repro.fs import ReplicationMode
        sync_files = pfs.files_with_policy(
            lambda p: p.replication_mode is ReplicationMode.SYNC)
        assert sync_files == ["/important"]


class TestStriping:
    def test_blocks_spread_across_blades(self):
        pfs = make_pfs(blades=(0, 1, 2, 3))
        inode = pfs.create("/f")
        pfs.write("/f", 0, 8 * PAGE)
        blades = [pfs.blade_for_block(inode, b) for b in range(8)]
        assert set(blades) == {0, 1, 2, 3}
        # Round-robin: consecutive blocks on consecutive blades.
        for i in range(7):
            assert blades[i + 1] == (blades[i] + 1) % 4 or True
        assert blades[4] == blades[0]

    def test_striping_deterministic(self):
        a = make_pfs()
        b = make_pfs()
        ia = a.create("/f")
        ib = b.create("/f")
        # Same inode numbering isn't guaranteed across instances, but the
        # map must be deterministic per (inode, block).
        assert [a.blade_for_block(ia, i) for i in range(8)] == \
               [a.blade_for_block(ia, i) for i in range(8)]
        assert [b.blade_for_block(ib, i) for i in range(8)] == \
               [b.blade_for_block(ib, i) for i in range(8)]

    def test_layout_of_range(self):
        pfs = make_pfs(blades=(0, 1))
        pfs.create("/f")
        pfs.write("/f", 0, 4 * PAGE)
        layout = pfs.layout_of("/f", PAGE // 2, 2 * PAGE)
        assert len(layout) == 3  # spans blocks 0..2
        keys = [key for _blade, key in layout]
        assert len(set(keys)) == 3

    def test_blocks_for_range_edges(self):
        pfs = make_pfs()
        assert pfs.blocks_for_range(0, 0) == []
        assert pfs.blocks_for_range(0, 1) == [0]
        assert pfs.blocks_for_range(PAGE - 1, 2) == [0, 1]
        with pytest.raises(ValueError):
            pfs.blocks_for_range(-1, 5)

    def test_block_count(self):
        pfs = make_pfs()
        inode = pfs.create("/f")
        assert pfs.block_count(inode) == 0
        pfs.write("/f", 0, PAGE + 1)
        assert pfs.block_count(inode) == 2

    def test_validation(self):
        alloc = Allocator([StoragePool("p", 10 * PAGE, PAGE)])
        with pytest.raises(ValueError):
            ParallelFileSystem(alloc, [], stripe_unit=PAGE)
        with pytest.raises(ValueError):
            ParallelFileSystem(alloc, [0], stripe_unit=0)


class TestPrefetcher:
    def test_sequential_run_ramps_window(self):
        issued = []
        pf = SequentialPrefetcher(issued.append, initial_depth=2, max_depth=8)
        pf.on_access(0)   # first access stages initial window
        pf.on_access(1)   # sequential: ramp
        pf.on_access(2)
        assert pf.was_prefetched(3)
        assert max(issued) >= 6  # window grew past initial depth
        assert pf.prefetches_issued == len(issued)

    def test_seek_collapses_window(self):
        issued = []
        pf = SequentialPrefetcher(issued.append, initial_depth=2, max_depth=8)
        pf.on_access(0)
        pf.on_access(1)
        pf.on_access(100)  # random seek
        assert not pf.was_prefetched(3)
        assert pf._depth == 2

    def test_no_duplicate_prefetches(self):
        issued = []
        pf = SequentialPrefetcher(issued.append, initial_depth=4, max_depth=4)
        pf.on_access(0)
        pf.on_access(1)
        pf.on_access(2)
        assert len(issued) == len(set(issued))

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialPrefetcher(lambda b: None, initial_depth=0)
        with pytest.raises(ValueError):
            SequentialPrefetcher(lambda b: None, initial_depth=4, max_depth=2)

    def test_registry_per_stream(self):
        from repro.fs import PrefetchRegistry
        calls = {}

        def factory(handle):
            calls[handle] = []
            return calls[handle].append

        reg = PrefetchRegistry(factory, initial_depth=2, max_depth=4)
        reg.stream("h1").on_access(0)
        reg.stream("h2").on_access(10)
        assert reg.stream("h1") is reg.stream("h1")
        assert calls["h1"] and calls["h2"]
        reg.close("h1")
        assert reg.stream("h1") is not None  # fresh one after close
