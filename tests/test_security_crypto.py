"""Unit + property tests for the crypto layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import (
    CryptoCostModel,
    EncryptedBlockStore,
    StreamCipher,
    derive_key,
)

KEY = bytes(range(16))


class TestStreamCipher:
    def test_round_trip(self):
        cipher = StreamCipher(KEY)
        plaintext = b"the national lab shared storage infrastructure"
        ciphertext = cipher.process(plaintext, nonce=7)
        assert ciphertext != plaintext
        assert cipher.process(ciphertext, nonce=7) == plaintext

    def test_wrong_nonce_garbles(self):
        cipher = StreamCipher(KEY)
        ciphertext = cipher.process(b"secret data!", nonce=1)
        assert cipher.process(ciphertext, nonce=2) != b"secret data!"

    def test_wrong_key_garbles(self):
        a = StreamCipher(KEY)
        b = StreamCipher(bytes(range(1, 17)))
        ciphertext = a.process(b"secret data!", nonce=1)
        assert b.process(ciphertext, nonce=1) != b"secret data!"

    def test_keystream_deterministic(self):
        cipher = StreamCipher(KEY)
        assert cipher.keystream(5, 100) == cipher.keystream(5, 100)
        assert cipher.keystream(5, 100) != cipher.keystream(6, 100)

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            StreamCipher(b"short")

    def test_tag_and_verify(self):
        cipher = StreamCipher(KEY)
        tag = cipher.tag(b"payload")
        assert cipher.verify(b"payload", tag)
        assert not cipher.verify(b"payloaX", tag)

    @settings(max_examples=30)
    @given(st.binary(min_size=0, max_size=256),
           st.integers(min_value=0, max_value=2**63 - 1))
    def test_property_round_trip(self, data, nonce):
        cipher = StreamCipher(KEY)
        assert cipher.process(cipher.process(data, nonce), nonce) == data

    @settings(max_examples=20)
    @given(st.binary(min_size=8, max_size=64))
    def test_property_ciphertext_differs(self, data):
        cipher = StreamCipher(KEY)
        out = cipher.process(data, nonce=3)
        # XTEA-CTR of non-degenerate input differs from input.
        assert out != data or data == cipher.keystream(3, len(data))


def test_derive_key_contexts_independent():
    master = b"m" * 32
    at_rest = derive_key(master, "volume:v1")
    link = derive_key(master, "tunnel:site-a:site-b")
    assert at_rest != link
    assert len(at_rest) == len(link) == 16
    assert derive_key(master, "volume:v1") == at_rest  # deterministic


class TestCostModel:
    def test_hardware_near_wire_speed(self):
        model = CryptoCostModel()
        nbytes = 10**8
        assert model.time_for("off", nbytes) == 0.0
        sw = model.time_for("software", nbytes)
        hw = model.time_for("hardware", nbytes)
        assert hw < sw / 10  # the paper's hardware-assist argument

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            CryptoCostModel().time_for("quantum", 100)


class TestEncryptedBlockStore:
    def test_transparent_round_trip(self):
        store = EncryptedBlockStore(StreamCipher(KEY))
        store.write(0, b"experiment results")
        assert store.read(0) == b"experiment results"

    def test_stolen_disk_sees_ciphertext(self):
        store = EncryptedBlockStore(StreamCipher(KEY))
        store.write(0, b"experiment results")
        raw = store.raw_ciphertext(0)
        assert raw != b"experiment results"
        assert b"experiment" not in raw

    def test_tamper_detected(self):
        store = EncryptedBlockStore(StreamCipher(KEY))
        store.write(0, b"experiment results")
        store.tamper(0)
        with pytest.raises(ValueError):
            store.read(0)

    def test_per_block_nonces_hide_equal_plaintexts(self):
        store = EncryptedBlockStore(StreamCipher(KEY))
        store.write(0, b"same bytes")
        store.write(1, b"same bytes")
        assert store.raw_ciphertext(0) != store.raw_ciphertext(1)
