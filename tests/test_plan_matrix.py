"""MatrixSpec: expansion, fault templates, and the parallel runner."""

import json

import pytest

from repro.plan import (ClusterSpec, MatrixSpec, ScenarioSpec, SiteSpec,
                        SpecError, WorkloadSpec, plan_storage, run_matrix,
                        run_scenario)
from repro.sim.rng import stable_hash
from repro.sim.units import mib

SMALL = ClusterSpec(blade_count=4, disk_count=8, disk_capacity=mib(64))

CAMPAIGN = {"seed": 5, "faults": [
    {"at": 30.0, "kind": "blade_crash", "target": "@site0.blade1",
     "duration": 20.0},
    {"at": 60.0, "kind": "transient_io", "target": "@site0.cache",
     "duration": 1.0, "severity": 2.0}]}


def base_spec(**kw):
    kw.setdefault("name", "smoke")
    kw.setdefault("cluster", SMALL)
    kw.setdefault("horizon_s", 120.0)
    kw.setdefault("workload", WorkloadSpec(clients=1, period_s=30.0))
    return ScenarioSpec(**kw)


def smoke_matrix():
    return MatrixSpec(base_spec(), sweep={
        "sites": [1, 2, 3],
        "replication": [2, 3],
        "faults": [None, CAMPAIGN],
    })


# -- expansion -----------------------------------------------------------------


def test_matrix_expands_the_cartesian_product():
    matrix = smoke_matrix()
    assert len(matrix) == 12
    specs = matrix.expand()
    assert len(specs) == 12
    assert len({s.name for s in specs}) == 12
    # Canonical axis order regardless of document order: sites before
    # replication before faults.
    assert specs[0].name == "smoke/sites=1/replication=2/faults=off"
    assert specs[-1].name == "smoke/sites=3/replication=3/faults=on"


def test_axes_apply_to_the_right_layers():
    specs = smoke_matrix().expand()
    by_name = {s.name: s for s in specs}
    three = by_name["smoke/sites=3/replication=3/faults=off"]
    assert [s.name for s in three.sites] == ["site0", "site1", "site2"]
    assert three.sites[2].position == (0.0, 1000.0)
    assert three.cluster.replication == 3
    assert three.faults is None
    one = by_name["smoke/sites=1/replication=2/faults=on"]
    assert len(one.sites) == 1
    assert one.cluster.replication == 2


def test_seeds_are_stable_distinct_and_name_derived():
    specs = smoke_matrix().expand()
    seeds = [s.seed for s in specs]
    assert len(set(seeds)) == len(seeds)
    for s in specs:
        assert s.seed == stable_hash((0, s.name))
    # Same matrix, same seeds — expansion is a pure function.
    assert [s.seed for s in smoke_matrix().expand()] == seeds


def test_fault_templates_resolve_per_topology():
    specs = smoke_matrix().expand()
    by_name = {s.name: s for s in specs}
    single = by_name["smoke/sites=1/replication=2/faults=on"]
    multi = by_name["smoke/sites=3/replication=2/faults=on"]
    # One campaign document: site-qualified in the 3-site cell, with the
    # qualifier (and the @) stripped in the 1-site cell.
    assert single.faults["faults"][0]["target"] == "blade1"
    assert single.faults["faults"][1]["target"] == "cache"
    assert multi.faults["faults"][0]["target"] == "site0.blade1"
    assert multi.faults["faults"][1]["target"] == "site0.cache"


def test_base_spec_faults_also_get_template_rewrite():
    matrix = MatrixSpec(base_spec(faults=CAMPAIGN), sweep={"sites": [1, 2]})
    one, two = matrix.expand()
    assert one.faults["faults"][0]["target"] == "blade1"
    assert two.faults["faults"][0]["target"] == "site0.blade1"


def test_bad_cells_fail_at_expansion_with_spec_path():
    matrix = MatrixSpec(base_spec(), sweep={"replication": [2, 9]})
    with pytest.raises(SpecError) as exc:
        matrix.expand()
    assert exc.value.path == "sites[0].replication"


def test_unknown_axis_and_empty_values_rejected():
    with pytest.raises(SpecError) as exc:
        MatrixSpec(base_spec(), sweep={"warp": [1]})
    assert exc.value.path == "sweep.warp"
    with pytest.raises(SpecError):
        MatrixSpec(base_spec(), sweep={"sites": []})
    with pytest.raises(SpecError):
        MatrixSpec(base_spec(), sweep={"sites": [0]}).expand()


# -- serialization -------------------------------------------------------------


def test_matrix_json_round_trip():
    matrix = smoke_matrix()
    again = MatrixSpec.from_json(matrix.to_json())
    assert again.as_dict() == matrix.as_dict()
    assert [s.name for s in again.expand()] == \
        [s.name for s in matrix.expand()]
    with pytest.raises(SpecError):
        MatrixSpec.from_dict({"bose": {}})


def test_matrix_from_one_json_document():
    """The ISSUE's headline: a ≥12-cell sweep compiles and builds from
    one JSON document with no per-scenario Python."""
    doc = {
        "name": "doc-smoke",
        "base": {"name": "doc-smoke", "horizon_s": 120.0,
                 "cluster": {"blade_count": 4, "disk_count": 8,
                             "disk_capacity": mib(64)},
                 "workload": {"clients": 1, "period_s": 30.0}},
        "sweep": {"sites": [1, 2, 3], "replication": [2, 3],
                  "faults": [None, CAMPAIGN]},
    }
    matrix = MatrixSpec.from_json(json.dumps(doc))
    specs = matrix.expand()
    assert len(specs) == 12
    for spec in specs:
        plan_storage(spec)  # every cell compiles


# -- running -------------------------------------------------------------------


def small_matrix():
    return MatrixSpec(base_spec(), sweep={
        "sites": [1, 2], "faults": [None, CAMPAIGN]})


def test_run_matrix_serial_and_parallel_agree():
    matrix = small_matrix()
    serial = run_matrix(matrix, max_workers=1)
    parallel = run_matrix(matrix, max_workers=4)
    assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]
    assert len(serial) == 4
    names = [s.name for s in matrix.expand()]
    assert [r.name for r in serial] == names
    for r in serial:
        assert r.sim_time >= 120.0
        assert r.ok > 0


def test_run_matrix_fingerprints_reproduce():
    matrix = small_matrix()
    first = [r.fingerprint for r in run_matrix(matrix, max_workers=2)]
    second = [r.fingerprint for r in run_matrix(matrix, max_workers=1)]
    assert first == second
    assert len(set(first)) == len(first)   # distinct cells, distinct digests


def test_run_scenario_matches_matrix_cell():
    matrix = small_matrix()
    cell = matrix.expand()[0]
    direct = run_scenario(cell)
    via_matrix = run_matrix(matrix, max_workers=1)[0]
    assert direct.as_dict() == via_matrix.as_dict()
