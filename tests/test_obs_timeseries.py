"""Unit tests for labeled time-series metrics (repro.obs.timeseries)."""

import json

import pytest

from repro.obs import Series, SeriesRegistry, Window
from repro.sim import Simulator


def make_series(interval=1.0, capacity=8, kind="sample"):
    sim = Simulator()
    s = Series(sim, "m", (), interval, capacity, kind=kind)
    return sim, s


class TestWindow:
    def test_stats_and_avg(self):
        w = Window(10.0, 4, 8.0, 1.0, 3.0, 3.0)
        assert w.avg == 2.0
        assert w.stat("sum") == 8.0
        assert w.stat("avg") == 2.0
        assert w.stat("min") == 1.0
        assert w.stat("max") == 3.0
        assert w.stat("p99") == 3.0
        assert w.stat("count") == 4.0

    def test_empty_window_avg_is_zero(self):
        assert Window(0.0, 0, 0.0, 0.0, 0.0, 0.0).avg == 0.0

    def test_as_dict_round_trips_through_json(self):
        w = Window(5.0, 2, 3.0, 1.0, 2.0, 2.0)
        assert json.loads(json.dumps(w.as_dict()))["count"] == 2.0


class TestSeries:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Series(sim, "m", (), 0.0, 8)
        with pytest.raises(ValueError):
            Series(sim, "m", (), 1.0, 0)
        with pytest.raises(ValueError):
            Series(sim, "m", (), 1.0, 8, kind="gauge")

    def test_bucket_roll_closes_window(self):
        sim, s = make_series()
        s.record(1.0)
        s.record(3.0)
        sim.now = 1.5          # next bucket: first record closes the old one
        s.record(9.0)
        ws = s.windows()
        assert len(ws) == 2
        assert ws[0].start == 0.0
        assert ws[0].count == 2
        assert ws[0].total == 4.0
        assert ws[0].min == 1.0 and ws[0].max == 3.0
        assert ws[1].start == 1.0 and ws[1].count == 1

    def test_p99_is_nearest_rank_not_interpolated(self):
        sim, s = make_series()
        for v in range(1, 101):  # 1..100 in one bucket
            s.record(float(v))
        (w,) = s.windows()
        assert w.p99 == 99.0     # ceil(0.99*100) = 99th order statistic
        # A single sample is its own p99.
        sim.now = 5.0
        s.record(42.0)
        assert s.windows()[-1].p99 == 42.0

    def test_incr_counter_semantics(self):
        sim, s = make_series()
        s.incr()
        s.incr(4.0)
        (w,) = s.windows()
        assert w.total == 5.0 and w.count == 2
        assert s.total_sum == 5.0

    def test_last_and_totals_survive_ring_eviction(self):
        sim, s = make_series(capacity=2)
        for i in range(5):
            sim.now = float(i)
            s.record(float(i))
        assert len(s.windows()) == 2          # ring kept the newest two
        assert s.windows_dropped == 3
        assert s.last == 4.0
        assert s.total_count == 5              # whole-run totals unaffected

    def test_window_at_and_ranges(self):
        sim, s = make_series()
        for t, v in ((0.5, 1.0), (2.5, 2.0), (3.5, 4.0)):
            sim.now = t
            s.record(v)
        sim.now = 10.0
        assert s.window_at(2.9).total == 2.0
        assert s.window_at(1.5) is None        # empty slot never existed
        assert [w.start for w in s.range_windows(2.0, 4.0)] == [2.0, 3.0]
        assert s.range_sum(0.0, 4.0) == 7.0
        assert s.range_count(2.0, 10.0) == 2

    def test_slot_stats_sample_skips_empty_slots(self):
        sim, s = make_series()
        sim.now = 0.0
        s.record(1.0)
        sim.now = 3.0
        s.record(5.0)
        sim.now = 4.0
        assert list(s.slot_stats(0.0, 4.0, "max")) == [1.0, 5.0]

    def test_slot_stats_level_carries_forward(self):
        sim, s = make_series(kind="level")
        sim.now = 1.0
        s.record(2.0)          # level rises at t=1 and is never re-recorded
        sim.now = 6.0
        s.record(0.0)
        sim.now = 8.0
        # Slots 1..5 carry the 2.0 level; slot 0 precedes any observation.
        assert list(s.slot_stats(0.0, 8.0, "max")) == [
            2.0, 2.0, 2.0, 2.0, 2.0, 0.0, 0.0]

    def test_slot_stats_level_uses_value_prior_to_range(self):
        # A 6-hour outage recorded only at its edges must read as "down"
        # in a window that starts mid-outage.
        sim, s = make_series(kind="level")
        sim.now = 0.0
        s.record(1.0)
        sim.now = 10.0
        s.record(1.0)          # close the first bucket into the ring
        sim.now = 12.0
        assert list(s.slot_stats(4.0, 8.0, "max")) == [1.0] * 4

    def test_label_str_formats_and_sorts(self):
        sim = Simulator()
        s = Series(sim, "m", (("blade", 3), ("site", "dr")), 1.0, 8)
        assert s.label_str() == '{blade="3",site="dr"}'
        assert Series(sim, "m", (), 1.0, 8).label_str() == ""

    def test_summary_aggregates_over_retention(self):
        sim, s = make_series()
        sim.now = 0.0
        s.record(2.0)
        sim.now = 1.0
        s.record(6.0)
        summ = s.summary()
        assert summ["count"] == 2.0
        assert summ["sum"] == 8.0
        assert summ["max"] == 6.0
        assert summ["avg"] == 4.0
        assert summ["last"] == 6.0


class TestSeriesRegistry:
    def test_label_order_is_identity_insensitive(self):
        reg = SeriesRegistry(Simulator())
        a = reg.series("x", site="a", blade=1)
        b = reg.series("x", blade=1, site="a")
        assert a is b
        assert len(reg) == 1

    def test_get_does_not_create(self):
        reg = SeriesRegistry(Simulator())
        assert reg.get("x") is None
        reg.series("x")
        assert reg.get("x") is not None
        assert len(reg) == 1

    def test_match_is_subset_match(self):
        reg = SeriesRegistry(Simulator())
        reg.series("lat", blade=0, op="read").record(1.0)
        reg.series("lat", blade=1, op="read").record(2.0)
        reg.series("lat", blade=1, op="write").record(3.0)
        reg.series("other", blade=1).record(4.0)
        assert len(reg.match("lat")) == 3
        assert len(reg.match("lat", op="read")) == 2
        assert len(reg.match("lat", blade=1, op="write")) == 1
        assert reg.match("lat", tenant="hpc") == []

    def test_snapshot_keys_carry_labels(self):
        reg = SeriesRegistry(Simulator())
        reg.series("ops", tenant="hpc").incr(3.0)
        snap = reg.snapshot()
        assert snap['ops{tenant="hpc"}.sum'] == 3.0
        assert snap['ops{tenant="hpc"}.count'] == 1.0
        assert reg.export_snapshot() == snap

    def test_to_json_is_deterministic(self):
        def build():
            reg = SeriesRegistry(Simulator())
            reg.series("b").record(1.0)
            reg.series("a", k="v").record(2.0)
            return reg.to_json()
        assert build() == build()

    def test_prometheus_exposition(self):
        reg = SeriesRegistry(Simulator())
        reg.series("cache.read_latency_s", blade=2).record(0.5)
        text = reg.to_prometheus()
        assert "# TYPE netstorage_cache_read_latency_s gauge" in text
        assert ('netstorage_cache_read_latency_s_total{blade="2"} 0.5'
                in text)
        assert text.endswith("\n")
        # Metric names are sanitized, never empty.
        reg2 = SeriesRegistry(Simulator())
        reg2.series("9bad-name!").record(1.0)
        assert "netstorage_bad_name_" in reg2.to_prometheus()

    def test_format_table_clips_and_titles(self):
        reg = SeriesRegistry(Simulator())
        for i in range(5):
            reg.series("m", i=i).record(float(i))
        table = reg.format_table(max_rows=3)
        assert "5 series" in table
        assert "2 not shown" in table

    def test_registry_never_schedules_events(self):
        sim = Simulator()
        reg = SeriesRegistry(sim)
        reg.series("x").record(1.0)
        reg.level("y").record(2.0)
        assert not sim._queue
