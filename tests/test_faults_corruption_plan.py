"""Corruption kinds in the fault-plan layer, and the legacy-injector
unification: typed plans round-trip the new kinds, unknown kinds fail
loudly with file context, campaigns bind to integrity-enabled systems,
and the legacy FailureInjector routes onto shared RecoveryTrackers."""

import warnings

import numpy as np
import pytest

from repro import FaultKind, FaultPlan, NetStorageSystem, Simulator, \
    SystemConfig
from repro.faults import FaultInjector
from repro.faults.plan import _CORRUPTION_KINDS, FaultSpec
from repro.hardware.failures import FailureInjector
from repro.sim.units import mib


# -- plan round-trip -------------------------------------------------------


def test_corruption_kinds_round_trip_json():
    plan = (FaultPlan()
            .add(10.0, FaultKind.BITROT, "disk3")
            .add(20.0, FaultKind.TORN_WRITE, "disk7", severity=2.0)
            .add(30.0, FaultKind.MISDIRECTED_WRITE, "disk0")
            .add(40.0, FaultKind.WIRE_CORRUPT, "cache", severity=3.0))
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.specs == plan.specs
    assert [s.kind for s in clone] == [
        FaultKind.BITROT, FaultKind.TORN_WRITE,
        FaultKind.MISDIRECTED_WRITE, FaultKind.WIRE_CORRUPT]


def test_unknown_kind_names_kind_and_context():
    doc = ('{"faults": [{"at": 1.0, "kind": "bitrot", "target": "d0"}, '
           '{"at": 2.0, "kind": "gamma_ray", "target": "d1"}]}')
    with pytest.raises(ValueError) as err:
        FaultPlan.from_json(doc, context="campaign.json")
    msg = str(err.value)
    assert "gamma_ray" in msg
    assert "campaign.json fault #1" in msg
    assert "bitrot" in msg  # the known-kinds list helps fix the fixture


def test_unknown_kind_default_context():
    with pytest.raises(ValueError) as err:
        FaultSpec.from_dict({"at": 0.0, "kind": "nope", "target": "x"})
    assert "'nope'" in str(err.value)


def test_random_campaign_corruption_semantics():
    plan = FaultPlan.random(
        99, 3600.0 * 24 * 30,
        {FaultKind.BITROT: ["disk0", "disk1"],
         FaultKind.WIRE_CORRUPT: ["cache"]},
        mtbf=3600.0 * 48, mttr=3600.0, corruption_burst=4)
    assert len(plan) > 0
    for spec in plan:
        assert spec.kind in _CORRUPTION_KINDS
        assert spec.duration == 0.0   # silent: no timed repair window
        assert spec.severity == 4.0   # corruption_burst
    # Determinism: same seed, same campaign (through JSON, too).
    again = FaultPlan.random(
        99, 3600.0 * 24 * 30,
        {FaultKind.BITROT: ["disk0", "disk1"],
         FaultKind.WIRE_CORRUPT: ["cache"]},
        mtbf=3600.0 * 48, mttr=3600.0, corruption_burst=4)
    assert again.to_json() == plan.to_json()


# -- binding to a system ---------------------------------------------------


def _quiesced_system(sim, integrity):
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(64), seed=7,
        integrity=integrity))
    system.start()
    system.create("/d")
    sim.run(until=system.write("/d", 0, mib(1)))
    sim.run()
    return system


def test_campaign_applies_at_rest_corruption():
    sim = Simulator()
    system = _quiesced_system(sim, integrity=True)
    injector = system.attach_faults(
        FaultPlan().add(5.0, FaultKind.BITROT, "disk2", severity=2.0))
    sim.run(until=10.0)
    assert injector.applied == 1
    disk = system.pool.disks[2]
    assert len(system.integrity.corrupt_records(disk.name)) == 2
    assert system.integrity.injected_by_kind["bitrot"] == 2


def test_corruption_binding_requires_integrity():
    sim = Simulator()
    system = _quiesced_system(sim, integrity=False)
    injector = system.attach_faults()
    # Without an IntegrityManager there is nothing to account corruption
    # against, so the targets simply don't exist — strict arming says so.
    with pytest.raises(KeyError):
        injector.arm(FaultPlan().add(5.0, FaultKind.BITROT, "disk2"))
    # Non-strict arming skips them, as stochastic over-generation would.
    injector.arm(FaultPlan().add(5.0, FaultKind.BITROT, "disk2"),
                 strict=False)
    assert injector.skipped == 1


# -- legacy FailureInjector unification ------------------------------------


class _Fragile:
    def __init__(self, name):
        self.name = name
        self.up = True

    def fail(self):
        self.up = False

    def repair(self):
        self.up = True


def test_legacy_injector_routes_events_to_shared_trackers():
    sim = Simulator()
    registry = FaultInjector(sim)  # anything with .tracker(name)
    legacy = FailureInjector(sim, tracker_registry=registry)
    comp = _Fragile("blade9")
    legacy.fail_at(comp, 10.0)
    legacy.repair_at(comp, 25.0)
    sim.run(until=50.0)
    assert not comp.up or comp.up  # both events applied below
    tracker = registry.tracker("blade9")
    assert tracker.failures == 1
    assert tracker.state.value == "up"
    assert tracker.availability() < 1.0  # the 15 s outage is on record
    assert legacy.failures_injected() == 1


def test_legacy_lifecycle_is_deprecated():
    sim = Simulator()
    legacy = FailureInjector(sim)
    with pytest.warns(DeprecationWarning, match="FaultPlan.random"):
        legacy.run_lifecycle(_Fragile("c0"), np.random.default_rng(1),
                             mtbf=100.0, mttr=10.0, horizon=50.0)
