"""Unit + property tests for the per-blade block cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BlockCache, BlockState, CapacityError


def test_insert_and_lookup():
    cache = BlockCache(4)
    cache.insert("a")
    assert "a" in cache
    assert cache.lookup("a") is not None
    assert cache.lookup("b") is None
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_ratio() == 0.5


def test_lru_eviction_order():
    cache = BlockCache(2)
    cache.insert("a")
    cache.insert("b")
    cache.lookup("a")  # refresh a
    cache.insert("c")  # evicts b (LRU)
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_priority_buckets_evict_low_first():
    cache = BlockCache(3)
    cache.insert("low1", priority=0)
    cache.insert("high", priority=5)
    cache.insert("low2", priority=0)
    cache.insert("new", priority=0)  # must evict low1, not high
    assert "high" in cache
    assert "low1" not in cache


def test_high_priority_survives_scan():
    """A burst of low-priority blocks cannot flush a pinned-priority file."""
    cache = BlockCache(10)
    for i in range(3):
        cache.insert(("hot", i), priority=9)
    for i in range(50):
        cache.insert(("scan", i), priority=0)
    for i in range(3):
        assert ("hot", i) in cache


def test_dirty_blocks_not_evictable():
    cache = BlockCache(2)
    cache.insert("d1", BlockState.MODIFIED)
    cache.insert("d2", BlockState.REPLICA)
    with pytest.raises(CapacityError):
        cache.insert("c")
    assert cache.pinned_count == 2


def test_clean_releases_pin():
    cache = BlockCache(2)
    cache.insert("d1", BlockState.MODIFIED)
    cache.clean("d1")
    entry = cache.entry("d1")
    assert entry.state is BlockState.SHARED
    assert not entry.locked
    cache.insert("x")
    cache.insert("y")  # now evictable: no error
    assert len(cache) == 2


def test_clean_missing_key_is_noop():
    cache = BlockCache(2)
    cache.clean("ghost")  # no error


def test_drop_and_drop_all():
    cache = BlockCache(4)
    cache.insert("a")
    cache.insert("b", BlockState.MODIFIED)
    cache.drop("a")
    assert "a" not in cache
    cache.drop_all()
    assert len(cache) == 0


def test_reinsert_changes_state():
    cache = BlockCache(4)
    cache.insert("a", BlockState.SHARED)
    cache.insert("a", BlockState.MODIFIED)
    assert cache.entry("a").state is BlockState.MODIFIED
    assert len(cache) == 1


def test_dirty_keys_listing():
    cache = BlockCache(4)
    cache.insert("a", BlockState.SHARED)
    cache.insert("b", BlockState.MODIFIED)
    cache.insert("c", BlockState.MODIFIED)
    assert sorted(cache.dirty_keys()) == ["b", "c"]


def test_capacity_validation():
    with pytest.raises(ValueError):
        BlockCache(0)


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 2)), max_size=200),
       st.integers(2, 8))
def test_property_never_exceeds_capacity(ops, capacity):
    """Whatever the access pattern, occupancy <= capacity and all
    non-evicted entries are found."""
    cache = BlockCache(capacity)
    for key, prio in ops:
        cache.insert(key, priority=prio)
        assert len(cache) <= capacity
        assert key in cache  # most-recent insert always resident


@settings(max_examples=50)
@given(st.lists(st.integers(0, 10), min_size=1, max_size=100))
def test_property_hit_plus_miss_equals_lookups(keys):
    cache = BlockCache(4)
    for k in keys:
        if cache.lookup(k) is None:
            cache.insert(k)
    assert cache.hits + cache.misses == len(keys)


def test_eviction_order_stable_across_priorities():
    # Victims must leave lowest-priority-bucket-first, LRU within the
    # bucket: the lazy-heap eviction path has to reproduce exactly the
    # order the old sorted-bucket scan produced.
    cache = BlockCache(6)
    cache.insert("p2-a", priority=2)
    cache.insert("p0-a", priority=0)
    cache.insert("p1-a", priority=1)
    cache.insert("p0-b", priority=0)
    cache.insert("p1-b", priority=1)
    cache.insert("p2-b", priority=2)
    cache.lookup("p0-a")  # refresh: p0-b becomes the LRU of bucket 0

    residents = {"p2-a", "p0-a", "p1-a", "p0-b", "p1-b", "p2-b"}
    order = []
    for i in range(6):
        cache.insert(("filler", i), priority=3)
        gone = [k for k in residents if k not in cache]
        assert len(gone) == 1, "each insert at capacity evicts exactly one"
        order.append(gone[0])
        residents.discard(gone[0])
    assert order == ["p0-b", "p0-a", "p1-a", "p1-b", "p2-a", "p2-b"]


def test_eviction_retires_stale_priority_buckets():
    # Draining a bucket via drop() leaves a stale heap entry; eviction must
    # skip it, and re-populating the priority must re-announce the bucket.
    cache = BlockCache(3)
    cache.insert("low", priority=0)
    cache.insert("mid", priority=1)
    cache.insert("high", priority=2)
    cache.drop("low")  # bucket 0 now empty but still in the heap
    cache.insert("mid2", priority=1)
    cache.insert("over", priority=2)  # victim: mid (LRU of lowest non-empty)
    assert "mid" not in cache and "mid2" in cache and "high" in cache
    cache.insert("low2", priority=0)  # re-announces bucket 0; evicts mid2
    assert "mid2" not in cache and "low2" in cache
    cache.insert("over2", priority=2)  # victim: low2 (bucket 0 again live)
    assert "low2" not in cache and "high" in cache and "over2" in cache
