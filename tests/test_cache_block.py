"""Unit + property tests for the per-blade block cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BlockCache, BlockState, CapacityError


def test_insert_and_lookup():
    cache = BlockCache(4)
    cache.insert("a")
    assert "a" in cache
    assert cache.lookup("a") is not None
    assert cache.lookup("b") is None
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_ratio() == 0.5


def test_lru_eviction_order():
    cache = BlockCache(2)
    cache.insert("a")
    cache.insert("b")
    cache.lookup("a")  # refresh a
    cache.insert("c")  # evicts b (LRU)
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_priority_buckets_evict_low_first():
    cache = BlockCache(3)
    cache.insert("low1", priority=0)
    cache.insert("high", priority=5)
    cache.insert("low2", priority=0)
    cache.insert("new", priority=0)  # must evict low1, not high
    assert "high" in cache
    assert "low1" not in cache


def test_high_priority_survives_scan():
    """A burst of low-priority blocks cannot flush a pinned-priority file."""
    cache = BlockCache(10)
    for i in range(3):
        cache.insert(("hot", i), priority=9)
    for i in range(50):
        cache.insert(("scan", i), priority=0)
    for i in range(3):
        assert ("hot", i) in cache


def test_dirty_blocks_not_evictable():
    cache = BlockCache(2)
    cache.insert("d1", BlockState.MODIFIED)
    cache.insert("d2", BlockState.REPLICA)
    with pytest.raises(CapacityError):
        cache.insert("c")
    assert cache.pinned_count == 2


def test_clean_releases_pin():
    cache = BlockCache(2)
    cache.insert("d1", BlockState.MODIFIED)
    cache.clean("d1")
    entry = cache.entry("d1")
    assert entry.state is BlockState.SHARED
    assert not entry.locked
    cache.insert("x")
    cache.insert("y")  # now evictable: no error
    assert len(cache) == 2


def test_clean_missing_key_is_noop():
    cache = BlockCache(2)
    cache.clean("ghost")  # no error


def test_drop_and_drop_all():
    cache = BlockCache(4)
    cache.insert("a")
    cache.insert("b", BlockState.MODIFIED)
    cache.drop("a")
    assert "a" not in cache
    cache.drop_all()
    assert len(cache) == 0


def test_reinsert_changes_state():
    cache = BlockCache(4)
    cache.insert("a", BlockState.SHARED)
    cache.insert("a", BlockState.MODIFIED)
    assert cache.entry("a").state is BlockState.MODIFIED
    assert len(cache) == 1


def test_dirty_keys_listing():
    cache = BlockCache(4)
    cache.insert("a", BlockState.SHARED)
    cache.insert("b", BlockState.MODIFIED)
    cache.insert("c", BlockState.MODIFIED)
    assert sorted(cache.dirty_keys()) == ["b", "c"]


def test_capacity_validation():
    with pytest.raises(ValueError):
        BlockCache(0)


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 2)), max_size=200),
       st.integers(2, 8))
def test_property_never_exceeds_capacity(ops, capacity):
    """Whatever the access pattern, occupancy <= capacity and all
    non-evicted entries are found."""
    cache = BlockCache(capacity)
    for key, prio in ops:
        cache.insert(key, priority=prio)
        assert len(cache) <= capacity
        assert key in cache  # most-recent insert always resident


@settings(max_examples=50)
@given(st.lists(st.integers(0, 10), min_size=1, max_size=100))
def test_property_hit_plus_miss_equals_lookups(keys):
    cache = BlockCache(4)
    for k in keys:
        if cache.lookup(k) is None:
            cache.insert(k)
    assert cache.hits + cache.misses == len(keys)
