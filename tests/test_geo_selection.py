"""Cost-model replica selection, plus the migration read-path bug fixes.

Three regression tests here pin the bugs this change fixed (each failed
before it):

* stale residency snapshot — a replica that completes *after* a file's
  first access now serves the very next read;
* size over-registration — an overshooting first read no longer inflates
  the registered block count;
* unreachable holder — a partitioned-but-alive holder falls through to
  the next candidate instead of failing the read.

The determinism suite holds the bar the kernel promises: same spec +
seed is byte-identical across scheduler backends, with ``selection``
defaulting to ``static`` so pre-existing scenarios don't shift.
"""

import pytest

from repro.core import SystemConfig
from repro.fs import FilePolicy, ReplicationMode
from repro.geo import (
    CostModelSelector,
    DistributedAccessManager,
    GeoReplicator,
    MetadataCenter,
    RandomSelector,
    ReplicaCatalog,
    RouteHistory,
    Site,
    StaticSelector,
    WanNetwork,
    make_selector,
)
from repro.geo.selection import UNREACHABLE
from repro.plan import (ClusterSpec, LinkSpec, ScenarioSpec, SiteSpec,
                        SpecError, WorkloadSpec, plan_storage, run_scenario)
from repro.plan.matrix import MatrixSpec
from repro.sim import Simulator
from repro.sim.units import gbps, mib

SYNC1 = FilePolicy(replication_mode=ReplicationMode.SYNC, replication_sites=1)
ASYNC1 = FilePolicy(replication_mode=ReplicationMode.ASYNC,
                    replication_sites=1)

SMALL = ClusterSpec(blade_count=2, disk_count=8, disk_capacity=mib(64),
                    cache_bytes_per_blade=mib(8))


def ring(sim):
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 400.0)))
    c = net.add_site(Site(sim, "c", (0.0, 4000.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    net.connect(b, c, bandwidth=gbps(1.0))
    net.connect(a, c, bandwidth=gbps(1.0))
    return net, a, b, c


def make_center(sim, **kw):
    center = MetadataCenter(sim, [
        SiteSpec("edmonton", (0.0, 0.0)),
        SiteSpec("seattle", (150.0, -1100.0)),
        SiteSpec("boulder", (1400.0, -1500.0)),
    ], config=SystemConfig(blade_count=2, disk_count=8,
                           disk_capacity=mib(64),
                           cache_bytes_per_blade=mib(8), replication=2), **kw)
    center.connect("edmonton", "seattle", bandwidth=gbps(2.5))
    center.connect("seattle", "boulder", bandwidth=gbps(1.0))
    center.connect("edmonton", "boulder", bandwidth=gbps(0.622))
    return center


# -- regression: the three fixed bugs ------------------------------------------------


class TestFixedBugs:
    def test_replica_completed_after_first_read_serves_next_read(self):
        """Stale-residency fix: the access layer's residency map tracks
        replica completions that happen *after* first-access registration,
        so the new copy serves the very next read at that site."""
        sim = Simulator()
        center = make_center(sim)
        center.create("/f", home="edmonton", policy=ASYNC1)
        sources = []

        def client():
            # First access registers residency while copies == {edmonton}.
            yield center.read("/f", 0, 1, at="boulder")
            # The write then replicates asynchronously to seattle...
            yield center.write("/f", 0, mib(1))
            yield sim.timeout(30.0)  # let the async backlog drain
            # ...and seattle's fresh copy must serve seattle locally.
            src = yield center.access.read(
                "/f", 0, center.site("seattle"))
            sources.append(src)

        sim.process(client())
        sim.run(until=120.0)
        assert "seattle" in center.replicator.files["/f"].copies
        fr = center.access.files["/f"]
        assert fr.fully_resident_at("seattle")
        assert sources == ["local"]

    def test_overshooting_first_read_does_not_inflate_size(self):
        """Over-registration fix: the file registers at its *true* size,
        so a too-large first read can't pin an inflated block count that
        defeats fully_resident_at forever."""
        sim = Simulator()
        center = make_center(sim)
        center.create("/f", home="edmonton")

        def client():
            yield center.write("/f", 0, mib(1))
            # Ask for 4 MiB of a 1 MiB file on the very first access.
            yield center.read("/f", 0, 4 * mib(1), at="boulder")

        sim.process(client())
        sim.run(until=120.0)
        fr = center.access.files["/f"]
        assert fr.block_count == 1  # not 4
        assert fr.fully_resident_at("boulder")

    def test_partitioned_holder_falls_back_to_next_candidate(self):
        """Unreachable-holder fix: a holder that is alive but WAN-cut is
        skipped (per-candidate fallback), not allowed to fail the read."""
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a", (0.0, 0.0)))
        b = net.add_site(Site(sim, "b", (0.0, 5000.0)))
        r = net.add_site(Site(sim, "r", (0.0, 100.0)))
        net.connect(a, r, bandwidth=gbps(1.0))
        net.connect(a, b, bandwidth=gbps(1.0))
        net.connect(b, r, bandwidth=gbps(1.0))
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection="static")
        dam.register("/f", 2 * mib(1), home=a)
        outcome = []

        def client():
            yield dam.pin_replica("/f", b)
            # Cut every fibre touching a: alive, holds the file, no route.
            net.graph.edges["a", "r"]["link"].failed = True
            net.graph.edges["a", "b"]["link"].failed = True
            # Static ranks a first (100 km vs 4900 km) — pre-fix this
            # read died with NoRouteError instead of using b's copy.
            src = yield dam.read("/f", 0, r)
            outcome.append(src)

        sim.process(client())
        sim.run(until=120.0)
        assert outcome == ["remote"]
        assert dam.metrics.counter("select.rerouted").value >= 1

    def test_cost_selector_ranks_partitioned_holder_last(self):
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a", (0.0, 0.0)))
        b = net.add_site(Site(sim, "b", (0.0, 5000.0)))
        r = net.add_site(Site(sim, "r", (0.0, 100.0)))
        net.connect(a, r, bandwidth=gbps(1.0))
        net.connect(b, r, bandwidth=gbps(1.0))
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection="cost")
        fr = dam.register("/f", mib(1), home=a)
        fr.resident["b"] = set(range(fr.block_count))
        net.graph.edges["a", "r"]["link"].failed = True
        sel = dam.selector
        assert sel.cost(fr, a, r, mib(1)) == UNREACHABLE
        assert [s.name for s in sel.rank(fr, 0, r, mib(1))] == ["b", "a"]


# -- the selectors -------------------------------------------------------------------


class TestRouteHistory:
    def test_ewma_tracks_observed_throughput(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        hist = RouteHistory(net, alpha=0.5).attach()

        def proc():
            yield net.transfer(a, b, mib(4))
            yield net.transfer(a, b, mib(4))

        sim.process(proc())
        sim.run()
        bw = hist.observed_bandwidth(a, b)
        assert bw is not None
        # Effective rate is below wire speed (propagation included) but
        # the right order of magnitude.
        assert 0.1 * gbps(2.5) < bw <= gbps(2.5)
        assert hist.samples == 2
        assert hist.outstanding["a"] == 0 and hist.outstanding["b"] == 0

    def test_cold_prediction_uses_route_shape(self):
        sim = Simulator()
        net, a, _b, c = ring(sim)
        hist = RouteHistory(net)
        links = net.route(a, c)
        expected = sum(l.latency for l in links) \
            + mib(1) / min(l.bandwidth for l in links)
        assert hist.predicted_seconds(a, c, mib(1)) == pytest.approx(expected)

    def test_partitioned_route_is_unreachable(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        for u, v in list(net.graph.edges):
            net.graph.edges[u, v]["link"].failed = True
        hist = RouteHistory(net)
        assert hist.predicted_seconds(a, b, mib(1)) == UNREACHABLE
        assert hist.hops(a, b) == 0

    def test_attach_is_idempotent(self):
        sim = Simulator()
        net, _a, _b, _c = ring(sim)
        hist = RouteHistory(net).attach().attach()
        assert net.observers.count(hist) == 1

    def test_alpha_validated(self):
        sim = Simulator()
        net, _a, _b, _c = ring(sim)
        with pytest.raises(ValueError):
            RouteHistory(net, alpha=0.0)


class TestCostModel:
    def _dam(self, sim, net, **kw):
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection=CostModelSelector(
                                           net, **kw))
        return dam

    def test_tie_breaks_on_name(self):
        sim = Simulator()
        net = WanNetwork(sim)
        r = net.add_site(Site(sim, "r", (0.0, 0.0)))
        east = net.add_site(Site(sim, "east", (0.0, 1000.0)))
        west = net.add_site(Site(sim, "west", (0.0, -1000.0)))
        net.connect(r, east, bandwidth=gbps(1.0))
        net.connect(r, west, bandwidth=gbps(1.0))
        dam = self._dam(sim, net)
        fr = dam.register("/f", mib(1), home=east)
        fr.resident["west"] = set(range(fr.block_count))
        ranked = dam.selector.rank(fr, 0, r, mib(1))
        assert [s.name for s in ranked] == ["east", "west"]

    def test_site_load_penalty_reorders(self):
        sim = Simulator()
        net = WanNetwork(sim)
        r = net.add_site(Site(sim, "r", (0.0, 0.0)))
        east = net.add_site(Site(sim, "east", (0.0, 1000.0)))
        west = net.add_site(Site(sim, "west", (0.0, -1000.0)))
        net.connect(r, east, bandwidth=gbps(1.0))
        net.connect(r, west, bandwidth=gbps(1.0))
        # east reports degraded capacity (blades down) via the load hook.
        dam = self._dam(sim, net,
                        site_load_fn=lambda name: 4.0 if name == "east"
                        else 0.0)
        fr = dam.register("/f", mib(1), home=east)
        fr.resident["west"] = set(range(fr.block_count))
        ranked = dam.selector.rank(fr, 0, r, mib(1))
        assert [s.name for s in ranked] == ["west", "east"]

    def test_staleness_penalizes_async_and_disqualifies_sync(self):
        sim = Simulator()
        net, a, b, r = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/async", ASYNC1, a)
        rep.register("/sync", SYNC1, a)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection="cost")
        dam.catalog.bind_replicator(rep)
        fr_async = dam.register("/async", mib(1), home=a)
        fr_sync = dam.register("/sync", mib(1), home=a)
        for fr in (fr_async, fr_sync):
            fr.resident["b"] = set(range(fr.block_count))
        sel = dam.selector
        fresh = sel.cost(fr_async, b, r, mib(1))
        rep.async_backlog[("/async", "b")] = mib(64)
        rep.async_backlog[("/sync", "b")] = mib(64)
        assert sel.cost(fr_async, b, r, mib(1)) > fresh
        # RPO 0: a stale copy of a sync-replicated file is not the file.
        assert sel.cost(fr_sync, b, r, mib(1)) == UNREACHABLE

    def test_wan_pain_triggers_migration_below_access_threshold(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       auto_replicate_threshold=100,
                                       selection="cost")
        fr = dam.register("/f", mib(2), home=a)
        fr.access_counts["b"] = 1
        assert not dam.selector.should_replicate(fr, "b", 100)
        dam.catalog.record_read("/f", "b", local=False,
                                wan_seconds=1.0, wan_bytes=mib(1))
        assert dam.selector.should_replicate(fr, "b", 100)

    def test_eviction_candidates_and_rebalance(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection="cost")
        fr = dam.register("/f", mib(2), home=a)
        fr.resident["b"] = set(range(fr.block_count))
        fr.resident["c"] = set(range(fr.block_count))
        for _ in range(40):
            dam.catalog.record_read("/f", "a", local=True)
            dam.catalog.record_read("/f", "b", local=True)
        dam.catalog.record_read("/f", "c", local=True)  # share 1/81
        assert dam.selector.eviction_candidates(fr) == ["c"]
        assert dam.rebalance("/f") == ["c"]
        assert "c" not in fr.resident
        # History forgotten: a later re-migration starts from zero cost.
        assert dam.catalog.reads("/f", "c") == 0

    def test_home_never_evicted(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection="cost")
        fr = dam.register("/f", mib(1), home=a)
        fr.resident["b"] = set(range(fr.block_count))
        for _ in range(100):
            dam.catalog.record_read("/f", "b", local=True)
        dam.catalog.record_read("/f", "a", local=True)  # cold *home*
        assert dam.selector.eviction_candidates(fr) == []


class TestSelectorFactory:
    def test_policies(self):
        sim = Simulator()
        net, _a, _b, _c = ring(sim)
        assert isinstance(make_selector("static", net), StaticSelector)
        assert isinstance(make_selector("random", net), RandomSelector)
        assert isinstance(make_selector("cost", net), CostModelSelector)
        with pytest.raises(ValueError):
            make_selector("greedy", net)

    def test_random_is_seed_deterministic(self):
        def picks(seed):
            sim = Simulator()
            net, a, b, c = ring(sim)
            sel = RandomSelector(net, ReplicaCatalog(), seed=seed)
            dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                           selection=sel)
            fr = dam.register("/f", mib(1), home=a)
            fr.resident["b"] = set(range(fr.block_count))
            return [tuple(s.name for s in sel.rank(fr, 0, c, mib(1)))
                    for _ in range(8)]

        assert picks(7) == picks(7)
        assert picks(7) != picks(8)  # astronomically unlikely to collide

    def test_static_matches_historical_order(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       selection="static")
        fr = dam.register("/f", mib(1), home=a)
        fr.resident["b"] = set(range(fr.block_count))
        # The pre-selection rule: nearest surviving holder by fibre
        # distance, name-tied — from c that is b (3600 km) then a.
        assert [s.name for s in dam.selector.rank(fr, 0, c, mib(1))] \
            == ["b", "a"]
        b.failed = True
        assert [s.name for s in dam.selector.rank(fr, 0, c, mib(1))] \
            == ["a"]


# -- the planner surface -------------------------------------------------------------


def geo_spec(**kw):
    kw.setdefault("cluster", SMALL)
    kw.setdefault("horizon_s", 240.0)
    kw.setdefault("sites", (SiteSpec("east"),
                            SiteSpec("west", (0.0, 900.0))))
    kw.setdefault("links", (LinkSpec("east", "west"),))
    kw.setdefault("workload", WorkloadSpec(clients=2, period_s=30.0,
                                           geo_mode="async", geo_sites=1))
    return ScenarioSpec(**kw)


class TestPlannerWiring:
    def test_spec_round_trips_selection(self):
        spec = geo_spec(selection="cost")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        # Documents predating the field still load, as static.
        doc = spec.as_dict()
        del doc["selection"]
        assert ScenarioSpec.from_dict(doc).selection == "static"

    def test_default_is_static(self):
        assert ScenarioSpec().selection == "static"

    def test_planner_rejects_unknown_policy(self):
        with pytest.raises(SpecError, match="selection"):
            plan_storage(geo_spec(selection="greedy"))

    def test_built_center_uses_spec_policy(self):
        for policy, cls in (("static", StaticSelector),
                            ("cost", CostModelSelector)):
            built = plan_storage(geo_spec(selection=policy)).build(
                Simulator())
            assert isinstance(built.center.access.selector, cls)
            assert built.center.selection == policy

    def test_matrix_sweeps_selection_axis(self):
        matrix = MatrixSpec(geo_spec(), {"selection": ["static", "cost"]})
        cells = matrix.expand()
        assert [c.selection for c in cells] == ["static", "cost"]
        assert all("selection=" in c.name for c in cells)


# -- determinism ---------------------------------------------------------------------


class TestDeterminism:
    def test_cost_identical_across_scheduler_backends(self):
        spec = geo_spec(selection="cost", seed=11)
        heap = run_scenario(spec, scheduler="heap")
        calendar = run_scenario(spec, scheduler="calendar")
        assert heap.fingerprint == calendar.fingerprint
        assert heap.ok > 0

    def test_cost_rerun_is_byte_identical(self):
        spec = geo_spec(selection="cost", seed=3)
        assert run_scenario(spec).fingerprint \
            == run_scenario(spec).fingerprint

    def test_static_explicit_equals_default(self):
        """Scenarios that never mention selection keep their traces: the
        default is exactly the historical static policy."""
        implicit = run_scenario(geo_spec(seed=5))
        explicit = run_scenario(geo_spec(selection="static", seed=5))
        assert implicit.fingerprint == explicit.fingerprint

    def test_random_identical_across_scheduler_backends(self):
        spec = geo_spec(selection="random", seed=2)
        assert run_scenario(spec, scheduler="heap").fingerprint \
            == run_scenario(spec, scheduler="calendar").fingerprint
