"""Integration tests: geo replication, distributed access, disaster recovery."""

import pytest

from repro.fs import FilePolicy, ReplicationMode
from repro.geo import (
    DisasterRecoveryCoordinator,
    DistributedAccessManager,
    GeoReplicator,
    Site,
    WanNetwork,
)
from repro.sim import Simulator
from repro.sim.units import gbps, mib

SYNC1 = FilePolicy(replication_mode=ReplicationMode.SYNC, replication_sites=1)
ASYNC1 = FilePolicy(replication_mode=ReplicationMode.ASYNC, replication_sites=1)
NONE = FilePolicy()


def ring(sim):
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 400.0)))
    c = net.add_site(Site(sim, "c", (0.0, 4000.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    net.connect(b, c, bandwidth=gbps(1.0))
    net.connect(a, c, bandwidth=gbps(1.0))
    return net, a, b, c


class TestGeoReplicator:
    def test_sync_ack_waits_for_remote(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", SYNC1, a)

        def proc():
            yield rep.write("/f", mib(1))
            return sim.now

        p = sim.process(proc())
        sim.run()
        # Must include at least the one-way latency to site b.
        assert p.value > net.rtt(a, b) / 2
        assert rep.files["/f"].copies == {"a", "b"}

    def test_async_acks_fast_then_drains(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", ASYNC1, a)
        ack_time = {}

        def proc():
            t0 = sim.now
            yield rep.write("/f", mib(8))
            ack_time["ack"] = sim.now - t0

        sim.process(proc())
        sim.run(until=30.0)
        # Ack did not wait for the WAN: it covers only the local store
        # write (~14.5ms for 8 MiB), not the ~27ms WAN transfer + RTT.
        wan_transfer_time = mib(8) / gbps(2.5)
        assert ack_time["ack"] < wan_transfer_time
        # ...but the backlog eventually drained.
        assert rep.async_backlog[("/f", "b")] == 0
        assert "b" in rep.files["/f"].copies

    def test_sync_latency_grows_with_distance(self):
        sim = Simulator()
        net, a, b, c = ring(sim)
        rep = GeoReplicator(sim, net)
        near = FilePolicy(replication_mode=ReplicationMode.SYNC,
                          replication_sites=1)
        far = FilePolicy(replication_mode=ReplicationMode.SYNC,
                         replication_sites=1, min_distance_km=2000.0)
        rep.register("/near", near, a)
        rep.register("/far", far, a)
        latencies = {}

        def proc():
            t0 = sim.now
            yield rep.write("/near", mib(1))
            latencies["near"] = sim.now - t0
            t0 = sim.now
            yield rep.write("/far", mib(1))
            latencies["far"] = sim.now - t0

        sim.process(proc())
        sim.run()
        assert latencies["far"] > latencies["near"]
        assert "c" in rep.files["/far"].copies  # distance floor respected

    def test_preferred_sites_honored(self):
        sim = Simulator()
        net, a, _b, c = ring(sim)
        rep = GeoReplicator(sim, net)
        policy = FilePolicy(replication_mode=ReplicationMode.SYNC,
                            replication_sites=1, preferred_sites=("c",))
        rep.register("/f", policy, a)

        def proc():
            yield rep.write("/f", mib(1))

        sim.process(proc())
        sim.run()
        assert rep.files["/f"].copies == {"a", "c"}

    def test_unreplicated_policy_stays_home(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/scratch", NONE, a)

        def proc():
            yield rep.write("/scratch", mib(4))

        sim.process(proc())
        sim.run()
        assert rep.files["/scratch"].copies == {"a"}

    def test_policy_change_at_any_time(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", NONE, a)
        rep.set_policy("/f", SYNC1)

        def proc():
            yield rep.write("/f", mib(1))

        sim.process(proc())
        sim.run()
        assert "b" in rep.files["/f"].copies

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/f", NONE, a)
        with pytest.raises(ValueError):
            rep.register("/f", NONE, a)

    def test_disaster_report_classification(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        rep.register("/replicated", SYNC1, a)
        rep.register("/unreplicated", NONE, a)

        def proc():
            yield rep.write("/replicated", mib(1))
            yield rep.write("/unreplicated", mib(1))

        sim.process(proc())
        sim.run()
        report = rep.site_disaster_report("a")
        assert report["lost_files"] == 1
        assert report["safe_files"] == 1


class TestDistributedAccess:
    def test_first_touch_remote_then_local(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1))
        dam.register("/data", 16 * mib(1), home=a)
        sources = []
        times = []

        def proc():
            for _ in range(2):
                t0 = sim.now
                src = yield dam.read("/data", 0, b)
                sources.append(src)
                times.append(sim.now - t0)

        sim.process(proc())
        sim.run(until=60.0)
        assert sources == ["remote", "local"]
        assert times[1] < times[0]  # local performance after migration

    def test_prefetch_warms_following_blocks(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       prefetch_depth=4)
        dam.register("/data", 16 * mib(1), home=a)

        def proc():
            yield dam.read("/data", 0, b)
            # Give background prefetch time to land.
            yield sim.timeout(5.0)
            src = yield dam.read("/data", 1, b)
            return src

        p = sim.process(proc())
        sim.run(until=60.0)
        assert p.value == "local"
        assert dam.metrics.counter("prefetch.blocks").value >= 1

    def test_auto_replication_after_threshold(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1),
                                       auto_replicate_threshold=3,
                                       prefetch_depth=1)
        dam.register("/hot", 8 * mib(1), home=a)

        def proc():
            # Scattered accesses from site b cross the threshold.
            for block in (0, 3, 6):
                yield dam.read("/hot", block, b)
            yield sim.timeout(10.0)

        sim.process(proc())
        sim.run(until=60.0)
        assert dam.files["/hot"].fully_resident_at("b")

    def test_out_of_range_block(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1))
        dam.register("/f", mib(2), home=a)
        caught = []

        def proc():
            try:
                yield dam.read("/f", 99, b)
            except ValueError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]

    def test_evict_protects_last_copy(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1))
        dam.register("/f", mib(2), home=a)
        with pytest.raises(ValueError):
            dam.evict_replica("/f", a)

    def test_pin_replica_copies_everything(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        dam = DistributedAccessManager(sim, net, block_size=mib(1))
        dam.register("/f", 4 * mib(1), home=a)

        def proc():
            yield dam.pin_replica("/f", b)

        sim.process(proc())
        sim.run()
        assert dam.files["/f"].fully_resident_at("b")


class TestDisasterRecovery:
    def test_failover_promotes_replicas(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        dr = DisasterRecoveryCoordinator(sim, net, rep)
        rep.register("/critical", SYNC1, a)
        rep.register("/scratch", NONE, a)

        def proc():
            yield rep.write("/critical", mib(1))
            yield rep.write("/scratch", mib(1))
            report = yield dr.fail_site(a)
            return report

        p = sim.process(proc())
        sim.run(until=30.0)
        report = p.value
        assert report.safe_files == 1
        assert report.lost_files == 1
        assert report.new_homes["/critical"] == "b"
        assert rep.files["/critical"].home == "b"
        assert report.rto == pytest.approx(
            dr.detection_delay + dr.catalog_failover_time)

    def test_rpo_counts_undrained_async(self):
        sim = Simulator()
        net, a, b, _c = ring(sim)
        # Strangle the a-b link so async backlog persists.
        for u, v, data in net.graph.edges(data=True):
            data["link"].bandwidth = 1e3
        rep = GeoReplicator(sim, net)
        dr = DisasterRecoveryCoordinator(sim, net, rep)
        rep.register("/f", ASYNC1, a)

        def proc():
            yield rep.write("/f", mib(4))
            report = yield dr.fail_site(a)
            return report

        p = sim.process(proc())
        sim.run(until=10.0)
        assert p.value.rpo_bytes > 0

    def test_failed_site_returning_mid_recovery_rejoins_fenced(self):
        """A site that comes back during the detection window must NOT
        resume write authority: promotion still completes, the returned
        home is fenced on the old epoch, and only reconciliation readmits
        it as a replica."""
        from repro.geo import EpochFencingError, ReconcileDaemon
        sim = Simulator()
        net, a, b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        dr = DisasterRecoveryCoordinator(sim, net, rep)
        daemon = ReconcileDaemon(sim, net, rep, settle_delay=0.1).start()
        rep.register("/f", ASYNC1, a)
        out = {}

        def proc():
            old_epoch = rep.leases.epoch("/f")
            yield rep.write("/f", mib(2), epoch=old_epoch)
            yield sim.timeout(3.0)  # replica at b is current
            recovery = dr.fail_site(a)
            # Power comes back inside detection_delay + failover time —
            # mid-recovery, before survivors finish promoting.
            yield sim.timeout(dr.detection_delay / 2)
            a.repair()
            report = yield recovery
            out["new_home"] = report.new_homes.get("/f")
            out["epoch"] = rep.leases.epoch("/f")
            out["fenced"] = rep.leases.fenced_holders("/f")
            # The returned ex-home retries on its stale epoch: fenced.
            try:
                yield rep.write("/f", mib(1), epoch=old_epoch)
                out["stale_write"] = "applied"
            except EpochFencingError:
                out["stale_write"] = "fenced"

        p = sim.process(proc())
        sim.run(until=p)
        sim.run()
        assert out["new_home"] == "b"
        assert rep.files["/f"].home == "b"
        assert out["epoch"] == 2
        assert out["fenced"] == {"a"}
        assert out["stale_write"] == "fenced"
        # The repair up-transition fired *before* promotion recorded the
        # fork, so the heal-triggered sweep saw nothing: the ex-home stays
        # fenced until reconciliation actually runs (operator sweep).
        assert rep.leases.fenced_holders("/f") == {"a"}
        daemon.request_sweep()
        sim.run()
        # Reconciliation caught the rejoined site up and lifted the
        # fence — as a *replica*, with authority still at b.
        gf = rep.files["/f"]
        assert "a" in gf.copies
        assert gf.site_versions["a"] == gf.version
        assert rep.leases.fenced_holders("/f") == set()
        assert rep.leases.holder("/f") == "b"
        assert daemon.summary()["sweeps"] >= 1

    def test_sync_policy_has_zero_rpo(self):
        sim = Simulator()
        net, a, _b, _c = ring(sim)
        rep = GeoReplicator(sim, net)
        dr = DisasterRecoveryCoordinator(sim, net, rep)
        rep.register("/f", SYNC1, a)

        def proc():
            for _ in range(5):
                yield rep.write("/f", mib(1))
            report = yield dr.fail_site(a)
            return report

        p = sim.process(proc())
        sim.run(until=30.0)
        assert p.value.rpo_bytes == 0
        assert p.value.lost_files == 0
