"""Unit tests for cluster membership, balancing, upgrades, rebuild coordination."""

import pytest

from repro.cluster import (
    ClusterMembership,
    ClusterRebuildCoordinator,
    ControllerCluster,
    LoadBalancer,
    NoBladesAvailableError,
    UpgradeAbortedError,
)
from repro.hardware import ControllerBlade, make_disk_farm
from repro.raid import DeclusteredPool, DeclusteredRebuildJob
from repro.sim import Simulator


def make_membership(sim, n=4, detection_delay=0.5):
    blades = [ControllerBlade(sim, i) for i in range(n)]
    return ClusterMembership(sim, blades, detection_delay=detection_delay)


class TestMembership:
    def test_live_tracking(self):
        sim = Simulator()
        ms = make_membership(sim)
        assert ms.live_ids() == [0, 1, 2, 3]
        ms.blades[1].fail()
        assert ms.live_ids() == [0, 2, 3]
        assert ms.quorum()

    def test_failure_detected_after_delay(self):
        sim = Simulator()
        ms = make_membership(sim, detection_delay=0.5)
        seen = []
        ms.on_change(lambda blade, ev: seen.append((sim.now, blade.blade_id, ev)))

        def killer():
            yield sim.timeout(1.0)
            ms.blades[2].fail()

        sim.process(killer())
        sim.run()
        assert seen == [(1.5, 2, "failed")]

    def test_flapping_blade_not_double_reported(self):
        """A blade that recovers before detection produces no failure event."""
        sim = Simulator()
        ms = make_membership(sim, detection_delay=1.0)
        seen = []
        ms.on_change(lambda blade, ev: seen.append(ev))

        def flapper():
            yield sim.timeout(1.0)
            ms.blades[0].fail()
            yield sim.timeout(0.2)  # repaired before heartbeat timeout
            ms.blades[0].repair()

        sim.process(flapper())
        sim.run()
        assert "failed" not in seen
        assert "joined" in seen

    def test_add_blade(self):
        sim = Simulator()
        ms = make_membership(sim, n=2)
        ms.add_blade(ControllerBlade(sim, 5))
        assert 5 in ms.blades
        with pytest.raises(ValueError):
            ms.add_blade(ControllerBlade(sim, 5))

    def test_quorum_loss(self):
        sim = Simulator()
        ms = make_membership(sim, n=3)
        ms.blades[0].fail()
        ms.blades[1].fail()
        assert not ms.quorum()


class TestLoadBalancer:
    def test_picks_least_loaded(self):
        sim = Simulator()
        ms = make_membership(sim, n=3)
        lb = LoadBalancer(ms)
        lb.start(0)
        lb.start(0)
        lb.start(1)
        assert lb.pick() == 2

    def test_skips_failed_blades(self):
        sim = Simulator()
        ms = make_membership(sim, n=2)
        lb = LoadBalancer(ms)
        ms.blades[0].fail()
        for _ in range(5):
            assert lb.pick() == 1

    def test_no_blades_raises(self):
        sim = Simulator()
        ms = make_membership(sim, n=1)
        lb = LoadBalancer(ms)
        ms.blades[0].fail()
        with pytest.raises(NoBladesAvailableError):
            lb.pick()

    def test_track_context(self):
        sim = Simulator()
        ms = make_membership(sim, n=1)
        lb = LoadBalancer(ms)
        with lb.track(0):
            assert lb.in_flight[0] == 1
        assert lb.in_flight[0] == 0
        assert lb.dispatched[0] == 1

    def test_unmatched_finish_rejected(self):
        sim = Simulator()
        lb = LoadBalancer(make_membership(sim, n=1))
        with pytest.raises(RuntimeError):
            lb.finish(0)

    def test_balanced_dispatch_has_low_imbalance(self):
        sim = Simulator()
        ms = make_membership(sim, n=4)
        lb = LoadBalancer(ms)
        for _ in range(100):
            blade = lb.pick()
            lb.start(blade)
            lb.finish(blade)
        assert lb.imbalance() < 1.2

    def test_empty_imbalance_is_one(self):
        sim = Simulator()
        lb = LoadBalancer(make_membership(sim, n=4))
        assert lb.imbalance() == 1.0


class TestControllerCluster:
    def test_scale_out_adds_capacity(self):
        sim = Simulator()
        cluster = ControllerCluster(sim, blade_count=2)
        fc_before = cluster.aggregate_fc_bandwidth()
        cache_before = cluster.total_cache_bytes()
        cluster.scale_out(2)
        assert cluster.aggregate_fc_bandwidth() == 2 * fc_before
        assert cluster.total_cache_bytes() == 2 * cache_before
        assert cluster.membership.size == 4

    def test_availability_drops_only_when_all_dead(self):
        sim = Simulator()
        cluster = ControllerCluster(sim, blade_count=2)

        def scenario():
            yield sim.timeout(10.0)
            cluster.blade(0).fail()
            yield sim.timeout(10.0)  # one blade still up: available
            cluster.blade(1).fail()
            yield sim.timeout(10.0)  # total outage
            cluster.blade(0).repair()
            yield sim.timeout(10.0)

        sim.process(scenario())
        sim.run()
        # ~10s outage (plus detection delay) out of ~40s.
        assert 0.6 < cluster.service_availability() < 0.8

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ControllerCluster(sim, blade_count=0)


class TestRollingUpgrade:
    def test_upgrades_all_blades_without_total_outage(self):
        sim = Simulator()
        cluster = ControllerCluster(sim, blade_count=3)
        upgrade = cluster.rolling_upgrade(duration_per_blade=5.0, min_live=2)
        proc = upgrade.start()
        result = sim.run(until=proc)
        assert result == [0, 1, 2]
        # At no instant were all blades down.
        assert cluster.service_availability() == pytest.approx(1.0)

    def test_waits_for_drain(self):
        sim = Simulator()
        cluster = ControllerCluster(sim, blade_count=2)
        upgrade = cluster.rolling_upgrade(duration_per_blade=1.0)
        # Simulate an in-flight op on blade 0 finishing at t=3.
        cluster.balancer.start(0)

        def finisher():
            yield sim.timeout(3.0)
            cluster.balancer.finish(0)

        sim.process(finisher())
        proc = upgrade.start()
        sim.run(until=proc)
        # Blade 0 went down only after its work drained at t=3.
        down_times = {bid: t for t, bid, ev in upgrade.log if ev == "down"}
        assert down_times[0] >= 3.0

    def test_aborts_below_min_live(self):
        sim = Simulator()
        cluster = ControllerCluster(sim, blade_count=2)
        cluster.blade(1).fail()
        upgrade = cluster.rolling_upgrade(min_live=2)
        proc = upgrade.start()
        with pytest.raises(UpgradeAbortedError):
            sim.run(until=proc)

    def test_min_live_validation(self):
        sim = Simulator()
        cluster = ControllerCluster(sim, blade_count=2)
        with pytest.raises(ValueError):
            cluster.rolling_upgrade(min_live=0)


class TestRebuildCoordination:
    CHUNK = 64 * 1024

    def make_pool(self, sim):
        disks = make_disk_farm(sim, 12, 64 * self.CHUNK)
        pool = DeclusteredPool(sim, disks, data_per_stripe=3,
                               chunk_size=self.CHUNK)
        pool.mark_failed(0)
        return pool

    def test_one_worker_per_blade(self):
        sim = Simulator()
        ms = make_membership(sim, n=4)
        coord = ClusterRebuildCoordinator(sim, ms)
        job = DeclusteredRebuildJob(self.make_pool(sim), 0, region_stripes=8)
        workers = coord.start(job)
        assert len(workers) == 4
        sim.run()
        assert job.done

    def test_blade_failure_respawns_worker_elsewhere(self):
        sim = Simulator()
        ms = make_membership(sim, n=3, detection_delay=0.01)
        coord = ClusterRebuildCoordinator(sim, ms)
        job = DeclusteredRebuildJob(self.make_pool(sim), 0, region_stripes=4)
        coord.start(job)

        def killer():
            yield sim.timeout(0.05)
            ms.blades[0].fail()

        sim.process(killer())
        sim.run()
        assert job.done
        assert coord.respawned == 1

    def test_double_start_rejected(self):
        sim = Simulator()
        ms = make_membership(sim, n=2)
        coord = ClusterRebuildCoordinator(sim, ms)
        pool = self.make_pool(sim)
        job = DeclusteredRebuildJob(pool, 0, region_stripes=8)
        coord.start(job)
        with pytest.raises(RuntimeError):
            coord.start(DeclusteredRebuildJob(pool, 0, region_stripes=8))
