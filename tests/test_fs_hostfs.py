"""Unit tests for the host-side GFS-style shared file system and its DLM."""

import pytest

from repro.fs import DistributedLockManager, HostSharedFileSystem, LockMode
from repro.sim import Simulator


def make_dlm(sim, **kw):
    return DistributedLockManager(sim, message_rtt=0.001, **kw)


class TestDlm:
    def test_first_acquire_costs_a_round_trip(self):
        sim = Simulator()
        dlm = make_dlm(sim)

        def proc():
            t0 = sim.now
            yield dlm.acquire("h1", "ino1", LockMode.SHARED)
            return sim.now - t0

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(0.001)
        assert dlm.lock_messages == 1

    def test_cached_reacquire_is_free(self):
        sim = Simulator()
        dlm = make_dlm(sim)

        def proc():
            yield dlm.acquire("h1", "ino1", LockMode.EXCLUSIVE)
            t0 = sim.now
            yield dlm.acquire("h1", "ino1", LockMode.EXCLUSIVE)
            yield dlm.acquire("h1", "ino1", LockMode.SHARED)  # downgrade ok
            return sim.now - t0

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0
        assert dlm.cache_hits == 2

    def test_concurrent_shared_grants_coexist(self):
        sim = Simulator()
        dlm = make_dlm(sim)

        def reader(host):
            yield dlm.acquire(host, "ino1", LockMode.SHARED)

        sim.process(reader("h1"))
        sim.process(reader("h2"))
        sim.run()
        assert dlm.holder_count("ino1") == 2
        assert dlm.revocations == 0

    def test_exclusive_revokes_cached_holders(self):
        sim = Simulator()
        dlm = make_dlm(sim)

        def scenario():
            yield dlm.acquire("h1", "ino1", LockMode.SHARED)
            yield dlm.acquire("h2", "ino1", LockMode.SHARED)
            yield dlm.acquire("h3", "ino1", LockMode.EXCLUSIVE)

        p = sim.process(scenario())
        sim.run(until=p)
        assert dlm.revocations == 2
        assert dlm.holder_count("ino1") == 1

    def test_flush_time_charged_on_revoke(self):
        sim = Simulator()
        dlm = DistributedLockManager(sim, message_rtt=0.001,
                                     flush_time=lambda h, r: 0.05)

        def scenario():
            yield dlm.acquire("h1", "ino1", LockMode.EXCLUSIVE)
            t0 = sim.now
            yield dlm.acquire("h2", "ino1", LockMode.EXCLUSIVE)
            return sim.now - t0

        p = sim.process(scenario())
        sim.run()
        # request RTT + revoke RTT + dirty flush
        assert p.value >= 0.001 + 0.001 + 0.05

    def test_voluntary_release(self):
        sim = Simulator()
        dlm = make_dlm(sim)

        def proc():
            yield dlm.acquire("h1", "ino1", LockMode.EXCLUSIVE)

        sim.process(proc())
        sim.run()
        dlm.release("h1", "ino1")
        assert dlm.holder_count("ino1") == 0


class TestHostSharedFs:
    def make_fs(self, sim):
        return HostSharedFileSystem(
            sim,
            device_read=lambda n: sim.timeout(0.002),
            device_write=lambda n: sim.timeout(0.003),
            message_rtt=0.001, dirty_flush_time=0.01)

    def test_single_host_repeat_access_is_lock_cached(self):
        sim = Simulator()
        fs = self.make_fs(sim)

        def proc():
            yield fs.write("h1", "/f")
            t0 = sim.now
            yield fs.write("h1", "/f")  # cached grant: no DLM trip
            return sim.now - t0

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(0.003)
        assert fs.dlm.cache_hits == 1

    def test_cross_host_write_ping_pong_costs_revokes(self):
        sim = Simulator()
        fs = self.make_fs(sim)

        def scenario():
            single_host_start = sim.now
            for _ in range(4):
                yield fs.write("h1", "/f")
            single = sim.now - single_host_start
            ping_pong_start = sim.now
            for i in range(4):
                yield fs.write(f"h{i % 2 + 1}", "/g")
            ping_pong = sim.now - ping_pong_start
            return single, ping_pong

        p = sim.process(scenario())
        sim.run()
        single, ping_pong = p.value
        assert ping_pong > 2 * single  # revoke + flush on every alternation
        assert fs.dlm.revocations >= 3

    def test_shared_readers_scale_without_revocation(self):
        sim = Simulator()
        fs = self.make_fs(sim)

        def reader(host):
            for _ in range(3):
                yield fs.read(host, "/data")

        for h in ("h1", "h2", "h3"):
            sim.process(reader(h))
        sim.run()
        assert fs.dlm.revocations == 0
        assert fs.reads == 9

    def test_read_after_foreign_write_flushes_dirty(self):
        sim = Simulator()
        fs = self.make_fs(sim)

        def scenario():
            yield fs.write("h1", "/f")
            t0 = sim.now
            yield fs.read("h2", "/f")  # must revoke h1 + flush its data
            return sim.now - t0

        p = sim.process(scenario())
        sim.run()
        assert p.value >= 0.001 + 0.001 + 0.01 + 0.002
