"""Full-stack integration scenarios across every subsystem, plus determinism."""

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.fs import CRITICAL, SCRATCH, FilePolicy
from repro.protocols import NasServer, ScsiTarget
from repro.security import LunMaskingTable, MaskingViolation
from repro.sim.units import kib, mib


def small_config(**overrides):
    defaults = dict(blade_count=4, disk_count=12, disk_capacity=mib(64),
                    cache_bytes_per_blade=mib(8), replication=2, seed=7)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def test_mixed_policy_workload_with_faults_end_to_end():
    """Clients with different policies, a blade death, a disk death with
    distributed rebuild, and a rolling upgrade — one continuous run."""
    sim = Simulator()
    system = NetStorageSystem(sim, small_config(blade_count=5))
    system.start()
    system.create("/scratch/a", policy=SCRATCH)
    system.create("/results/b", policy=CRITICAL)
    outcomes = {}

    def scenario():
        yield system.write("/results/b", 0, mib(2))
        yield system.write("/scratch/a", 0, mib(2))
        # Blade failure: critical data (3-way) survives.
        system.cluster.blade(0).fail()
        yield sim.timeout(1.0)
        yield system.read("/results/b", 0, mib(2))
        # Losses are allowed only for the scratch file (fault tolerance 1
        # by its own policy); the critical file's 3-way blocks survive.
        critical_ino = system.pfs.open("/results/b").ino
        outcomes["critical_lost"] = sum(
            1 for key in system.cache.lost_dirty_blocks
            if key[1] == critical_ino)
        system.cluster.blade(0).repair()
        # Disk failure + rebuild while serving.
        job = system.fail_disk_and_rebuild(3)
        while not job.done:
            yield system.read("/results/b", 0, kib(256))
            yield sim.timeout(0.05)
        outcomes["rebuild"] = job.progress
        # Rolling upgrade with service continuing.
        upgrade = system.cluster.rolling_upgrade(duration_per_blade=2.0,
                                                 min_live=3)
        proc = upgrade.start()
        while proc.is_alive:
            yield system.read("/scratch/a", 0, kib(64))
            yield sim.timeout(0.25)
        outcomes["upgraded"] = len(upgrade.upgraded)

    sim.process(scenario())
    sim.run(until=600.0)
    assert outcomes["critical_lost"] == 0
    assert outcomes["rebuild"] == 1.0
    assert outcomes["upgraded"] == 5
    assert system.cluster.service_availability() == 1.0


def test_protocol_heads_share_one_pool():
    """SCSI block export and NAS file export front the same system."""
    sim = Simulator()
    system = NetStorageSystem(sim, small_config())
    system.start()
    system.create("/nas/file")
    system.masking.register_lun("lun0", owner="hpc")
    system.masking.expose("wwn-hpc", "lun0")

    def block_backend(lun, op, offset, nbytes):
        # Block commands resolve through the same cache/pool path.
        return (system.raw_write(nbytes) if op == "write"
                else system.raw_read(nbytes))

    target = ScsiTarget(sim, system.masking, block_backend)

    def nas_data_path(blade, key, op):
        if op == "write":
            return system.cache.write(blade, key)
        return system.cache.read(blade, key)

    nas = NasServer(sim, system.pfs, nas_data_path)
    results = {}

    def clients():
        results["scsi"] = (yield target.submit("wwn-hpc", "lun0", "write",
                                               0, kib(128)))
        try:
            yield target.submit("wwn-rogue", "lun0", "read", 0, kib(4))
        except MaskingViolation:
            results["rogue_blocked"] = True
        yield nas.write("/nas/file", 0, kib(128))
        results["nas_size"] = yield nas.getattr("/nas/file")

    sim.process(clients())
    sim.run(until=30.0)
    assert results["scsi"] == kib(128)
    assert results["rogue_blocked"]
    assert results["nas_size"] == kib(128)
    assert target.commands_served == 1
    assert target.commands_rejected == 1


def test_same_seed_reproduces_exactly():
    """Determinism: identical (config, seed, workload) → identical report."""

    def run():
        sim = Simulator()
        system = NetStorageSystem(sim, small_config(seed=99))
        system.start()
        system.create("/f", policy=FilePolicy(write_fault_tolerance=2))

        def client():
            for i in range(10):
                yield system.write("/f", i * mib(1), mib(1))
                yield system.read("/f", 0, mib(1))

        sim.process(client())
        sim.run(until=20.0)
        report = system.report()
        report["now"] = sim.now
        report["disk_ops"] = sum(d.ops for d in system.disks)
        return report

    assert run() == run()


def test_scale_out_mid_run_adds_service_capacity():
    """§6.3: blades added 'at any time' start taking work."""
    sim = Simulator()
    system = NetStorageSystem(sim, small_config(blade_count=2))
    system.start()
    system.create("/f")

    def scenario():
        yield system.write("/f", 0, mib(1))
        system.scale_out(2)
        yield system.write("/f", mib(1), mib(2))

    sim.process(scenario())
    sim.run(until=30.0)
    assert system.cluster.membership.size == 4
    served = {bid: n for bid, n in system.cluster.balancer.dispatched.items()
              if n > 0}
    assert set(served) == {0, 1, 2, 3}  # the newcomers took work


def test_report_is_flat_floats():
    sim = Simulator()
    system = NetStorageSystem(sim, small_config())
    report = system.report()
    assert all(isinstance(v, (int, float)) for v in report.values())
