"""PARTITION faults: target grammar, injection, overlap composition."""

import pytest

from repro.faults import FaultKind, FaultPlan, parse_partition_target
from repro.faults.injector import FaultInjector
from repro.geo import GeoReplicator, Site, WanNetwork
from repro.plan import (MatrixSpec, ScenarioSpec, SiteSpec, SpecError,
                        plan_storage, run_scenario)
from repro.sim import Simulator
from repro.sim.units import gbps, mib


def triangle(sim):
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 400.0)))
    c = net.add_site(Site(sim, "c", (3000.0, 1500.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    net.connect(b, c, bandwidth=gbps(1.0))
    net.connect(a, c, bandwidth=gbps(1.0))
    return net, a, b, c


class TestParsePartitionTarget:
    def test_groups_sorted_and_deduped(self):
        assert parse_partition_target("b, a ,a|c") == (("a", "b"), ("c",))

    def test_exactly_two_groups(self):
        with pytest.raises(ValueError):
            parse_partition_target("a,b,c")
        with pytest.raises(ValueError):
            parse_partition_target("a|b|c")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            parse_partition_target("a|")
        with pytest.raises(ValueError):
            parse_partition_target("| b")

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            parse_partition_target("a,b|b,c")


class TestPartitionInjection:
    def test_cut_is_bidirectional_and_sites_stay_up(self):
        sim = Simulator()
        net, a, b, c = triangle(sim)
        plan = FaultPlan().add(1.0, "partition", "a|b,c", duration=2.0)
        FaultInjector(sim).bind_partitions(net).arm(plan)
        seen = {}

        def probe(label):
            seen[label] = {
                "a_to_b": net.reachable(a, b),
                "b_to_a": net.reachable(b, a),
                "b_to_c": net.reachable(b, c),
                "a_failed": a.failed,
            }

        sim.call_at(1.5, lambda: probe("during"))
        sim.call_at(4.0, lambda: probe("after"))
        sim.run(until=5.0)
        assert seen["during"] == {"a_to_b": False, "b_to_a": False,
                                  "b_to_c": True, "a_failed": False}
        assert seen["after"] == {"a_to_b": True, "b_to_a": True,
                                 "b_to_c": True, "a_failed": False}

    def test_unknown_site_in_group_rejected_at_arm(self):
        sim = Simulator()
        net, *_ = triangle(sim)
        plan = FaultPlan().add(1.0, "partition", "a|zz", duration=1.0)
        with pytest.raises(ValueError, match="unknown site"):
            FaultInjector(sim).bind_partitions(net).arm(plan)

    def test_partition_without_network_binding_is_strict_error(self):
        sim = Simulator()
        plan = FaultPlan().add(1.0, "partition", "a|b", duration=1.0)
        with pytest.raises(KeyError):
            FaultInjector(sim).arm(plan)

    def test_plan_json_round_trip(self):
        plan = FaultPlan().add(3.0, "partition", "a,b|c", duration=4.0)
        again = FaultPlan.from_json(plan.to_json())
        spec = again.by_kind(FaultKind.PARTITION)[0]
        assert (spec.at, spec.target, spec.duration) == (3.0, "a,b|c", 4.0)

    def test_random_campaign_draws_partition_windows(self):
        plan = FaultPlan.random(7, 1000.0,
                                {"partition": ["a|b,c", "c|a,b"]},
                                mtbf=200.0, mttr=50.0)
        specs = plan.by_kind(FaultKind.PARTITION)
        assert specs and all(s.duration > 0 for s in specs)
        # Same seed, same campaign.
        replay = FaultPlan.random(7, 1000.0,
                                  {"partition": ["a|b,c", "c|a,b"]},
                                  mtbf=200.0, mttr=50.0)
        assert plan.to_json() == replay.to_json()


class TestOverlapComposition:
    def test_link_flap_overlapping_partition_no_early_repair(self):
        sim = Simulator()
        net, a, b, c = triangle(sim)
        ab = net.graph.edges["a", "b"]["link"]
        ac = net.graph.edges["a", "c"]["link"]
        injector = FaultInjector(sim).bind_partitions(net)
        injector.bind_link(ab)
        plan = (FaultPlan()
                .add(1.0, "link_flap", ab.name, duration=4.0)
                .add(2.0, "partition", "a|b,c", duration=1.0))
        injector.arm(plan)
        seen = {}

        def probe(label):
            seen[label] = (ab.failed, ac.failed)

        sim.call_at(2.5, lambda: probe("both_active"))
        # The partition heals at t=3: its release must NOT resurrect the
        # a-b fibre the flap still holds, but a-c (held only by the
        # partition) comes back.
        sim.call_at(3.5, lambda: probe("flap_only"))
        sim.call_at(5.5, lambda: probe("all_clear"))
        sim.run(until=6.0)
        assert seen["both_active"] == (True, True)
        assert seen["flap_only"] == (True, False)
        assert seen["all_clear"] == (False, False)

    def test_overlapping_site_loss_holds_until_last_release(self):
        sim = Simulator()
        net, a, _b, _c = triangle(sim)
        rep = GeoReplicator(sim, net)
        injector = FaultInjector(sim)
        injector.bind_site(a)
        plan = (FaultPlan()
                .add(1.0, "site_loss", "a", duration=4.0)
                .add(2.0, "site_loss", "a", duration=1.0))
        injector.arm(plan)
        seen = {}
        sim.call_at(3.5, lambda: seen.update(mid=a.failed))
        sim.call_at(5.5, lambda: seen.update(end=a.failed))
        sim.run(until=6.0)
        # The inner spec's clear at t=3 must not resurrect the site the
        # outer, longer outage still claims.
        assert seen == {"mid": True, "end": False}
        # One physical outage => one down transition and one tracked
        # failure, however many overlapping specs composed it.
        assert rep.metrics.counter("site.down_transitions").value == 1
        assert injector.tracker("a").failures == 1

    def test_double_outage_counts_two_transitions(self):
        sim = Simulator()
        net, a, _b, _c = triangle(sim)
        rep = GeoReplicator(sim, net)
        injector = FaultInjector(sim)
        injector.bind_site(a)
        plan = (FaultPlan()
                .add(1.0, "site_loss", "a", duration=1.0)
                .add(4.0, "site_loss", "a", duration=1.0))
        injector.arm(plan)
        sim.run(until=10.0)
        assert rep.metrics.counter("site.down_transitions").value == 2
        assert injector.tracker("a").failures == 2


class TestPlannerValidation:
    def _wan_spec(self, faults=None, **kw):
        kw.setdefault("sites", (SiteSpec("a"), SiteSpec("b", (0.0, 400.0)),
                                SiteSpec("c", (3000.0, 1500.0))))
        kw.setdefault("site_backing", "aggregate")
        return ScenarioSpec(faults=faults, **kw)

    def test_partition_rejected_on_single_site(self):
        spec = ScenarioSpec(faults={"faults": [
            {"at": 1.0, "kind": "partition", "target": "a|b",
             "duration": 1.0}]})
        with pytest.raises(SpecError) as exc:
            plan_storage(spec)
        assert exc.value.path == "faults[0].target"

    def test_partition_group_must_name_declared_sites(self):
        spec = self._wan_spec(faults={"faults": [
            {"at": 1.0, "kind": "partition", "target": "a|zz",
             "duration": 1.0}]})
        with pytest.raises(SpecError) as exc:
            plan_storage(spec)
        assert exc.value.path == "faults[0].target"
        assert "zz" in str(exc.value)

    def test_partition_grammar_errors_carry_spec_path(self):
        spec = self._wan_spec(faults={"faults": [
            {"at": 1.0, "kind": "partition", "target": "a,b|b",
             "duration": 1.0}]})
        with pytest.raises(SpecError) as exc:
            plan_storage(spec)
        assert exc.value.path == "faults[0].target"

    def test_valid_partition_campaign_compiles(self):
        spec = self._wan_spec(faults={"faults": [
            {"at": 1.0, "kind": "partition", "target": "a|b,c",
             "duration": 2.0}]})
        plan = plan_storage(spec)
        assert plan.faults.by_kind(FaultKind.PARTITION)[0].target == "a|b,c"

    def test_reconcile_axis_round_trips(self):
        spec = ScenarioSpec.from_dict({"reconcile": True})
        assert spec.reconcile is True
        assert spec.as_dict()["reconcile"] is True
        # Off stays out of the document (fixture byte-identity).
        assert "reconcile" not in ScenarioSpec().as_dict()

    def test_matrix_sweeps_reconcile(self):
        matrix = MatrixSpec(
            base=ScenarioSpec(sites=(SiteSpec("a"),
                                     SiteSpec("b", (0.0, 400.0))),
                              site_backing="aggregate", horizon_s=10.0),
            sweep={"reconcile": [False, True]})
        specs = matrix.expand()
        assert [s.reconcile for s in specs] == [False, True]
        assert specs[1].name.endswith("reconcile=on")


class TestScenarioPartition:
    def test_partitioned_scenario_reconciles(self):
        doc = {
            "name": "partition-smoke", "seed": 11, "horizon_s": 30.0,
            "site_backing": "aggregate",
            "sites": [{"name": "a", "position": [0.0, 0.0]},
                      {"name": "b", "position": [0.0, 400.0]},
                      {"name": "c", "position": [3000.0, 1500.0]}],
            "workload": {"clients": 3, "op_bytes": int(mib(1)),
                         "period_s": 0.5, "geo_mode": "sync",
                         "geo_sites": 2},
            "faults": {"faults": [
                {"at": 5.0, "kind": "partition", "target": "a|b,c",
                 "duration": 6.0}]},
            "reconcile": True,
        }
        result = run_scenario(ScenarioSpec.from_dict(doc))
        assert result.ok > 0
        assert result.failed > 0  # sync writes failed visibly during cut
        assert result.metrics.get("reconcile.sweeps", 0.0) >= 1
