"""Unit tests for RaidArray plan generation and execution."""

import pytest

from repro.hardware import make_disk_farm
from repro.raid import RaidArray, RaidLevel, UnrecoverableArrayError, coalesce
from repro.raid.layout import IoOp
from repro.sim import Simulator

CHUNK = 1024
DISK_CAP = 64 * CHUNK


def make_array(sim, level, n, chunk=CHUNK):
    disks = make_disk_farm(sim, n, DISK_CAP, name="t")
    return RaidArray(sim, disks, level, chunk_size=chunk)


class TestCoalesce:
    def test_merges_adjacent(self):
        ops = [IoOp(0, 0, 100, "read"), IoOp(0, 100, 100, "read")]
        merged = coalesce(ops)
        assert merged == [IoOp(0, 0, 200, "read")]

    def test_keeps_gaps(self):
        ops = [IoOp(0, 0, 100, "read"), IoOp(0, 300, 100, "read")]
        assert len(coalesce(ops)) == 2

    def test_separates_read_write_and_disks(self):
        ops = [IoOp(0, 0, 100, "read"), IoOp(0, 100, 100, "write"),
               IoOp(1, 0, 100, "read")]
        assert len(coalesce(ops)) == 3

    def test_overlapping_merge(self):
        ops = [IoOp(0, 0, 150, "read"), IoOp(0, 100, 100, "read")]
        assert coalesce(ops) == [IoOp(0, 0, 200, "read")]


class TestRaid0Plans:
    def test_read_spreads_across_disks(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID0, 4)
        plan = arr.read_plan(0, 4 * CHUNK)
        assert sorted(op.disk for op in plan) == [0, 1, 2, 3]
        assert all(op.op == "read" and op.nbytes == CHUNK for op in plan)

    def test_failed_disk_is_fatal(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID0, 4)
        arr.mark_failed(1)
        assert arr.is_failed
        with pytest.raises(UnrecoverableArrayError):
            arr.read_plan(0, 4 * CHUNK)


class TestRaid1Plans:
    def test_write_hits_all_mirrors(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID1, 3)
        plan = arr.write_plan(0, CHUNK)
        assert sorted(op.disk for op in plan) == [0, 1, 2]
        assert all(op.op == "write" for op in plan)

    def test_reads_rotate_across_mirrors(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID1, 2)
        sources = {arr.read_plan(0, CHUNK)[0].disk for _ in range(4)}
        assert sources == {0, 1}

    def test_degraded_read_uses_survivor(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID1, 2)
        arr.mark_failed(0)
        for _ in range(3):
            plan = arr.read_plan(0, CHUNK)
            assert plan[0].disk == 1

    def test_all_mirrors_lost(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID1, 2)
        arr.mark_failed(0)
        arr.mark_failed(1)
        assert arr.is_failed


class TestRaid5Plans:
    def test_clean_read_touches_only_data(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        plan = arr.read_plan(0, CHUNK)
        assert len(plan) == 1
        assert plan[0] == IoOp(0, 0, CHUNK, "read")

    def test_degraded_read_reconstructs_from_peers(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        arr.mark_failed(0)  # stripe 0 data disk
        plan = arr.read_plan(0, CHUNK)
        # Reads the two other data chunks + parity (disks 1, 2, 3).
        assert sorted(op.disk for op in plan) == [1, 2, 3]
        assert all(op.nbytes == CHUNK for op in plan)

    def test_small_write_is_read_modify_write(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        plan = arr.write_plan(0, CHUNK)  # one of three data chunks
        reads = [op for op in plan if op.op == "read"]
        writes = [op for op in plan if op.op == "write"]
        # Classic RAID5 small-write: 2 reads (old data, old parity),
        # 2 writes (new data, new parity).
        assert len(reads) == 2
        assert len(writes) == 2
        assert {op.disk for op in writes} == {0, 3}

    def test_full_stripe_write_skips_reads(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        plan = arr.write_plan(0, 3 * CHUNK)  # full stripe 0
        assert all(op.op == "write" for op in plan)
        assert sorted(op.disk for op in plan) == [0, 1, 2, 3]

    def test_degraded_write_reconstructs(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        arr.mark_failed(0)
        plan = arr.write_plan(0, CHUNK)  # writing onto the dead disk
        writes = [op for op in plan if op.op == "write"]
        reads = [op for op in plan if op.op == "read"]
        # Can't write disk 0; must read surviving data (1, 2) and write parity.
        assert all(op.disk != 0 for op in plan)
        assert {op.disk for op in reads} == {1, 2}
        assert {op.disk for op in writes} == {3}

    def test_write_to_failed_parity_stripe(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        arr.mark_failed(3)  # parity disk of stripe 0
        plan = arr.write_plan(0, CHUNK)
        # No parity to maintain: a single data write.
        assert plan == [IoOp(0, 0, CHUNK, "write")]

    def test_double_failure_is_fatal(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        arr.mark_failed(0)
        arr.mark_failed(1)
        assert arr.is_failed
        with pytest.raises(UnrecoverableArrayError):
            arr.read_plan(0, CHUNK)


class TestRaid6Plans:
    def test_survives_two_failures(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID6, 5)
        arr.mark_failed(0)
        arr.mark_failed(1)
        assert not arr.is_failed
        plan = arr.read_plan(0, CHUNK)
        assert all(op.disk not in (0, 1) for op in plan)

    def test_three_failures_fatal(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID6, 5)
        for d in (0, 1, 2):
            arr.mark_failed(d)
        assert arr.is_failed


class TestRaid10Plans:
    def test_pair_loss_is_fatal_but_spread_loss_is_not(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID10, 4)
        arr.mark_failed(0)
        arr.mark_failed(2)  # different pairs: fine
        assert not arr.is_failed
        arr.mark_replaced(2)
        arr.mark_failed(1)  # both of pair (0,1): data loss
        assert arr.is_failed

    def test_write_mirrors_within_pair(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID10, 4)
        plan = arr.write_plan(0, CHUNK)
        assert sorted(op.disk for op in plan) == [0, 1]


class TestExecution:
    def test_striped_read_faster_than_single_disk(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID0, 4)

        def striped():
            yield arr.read(0, 4 * CHUNK)
            return sim.now

        p = sim.process(striped())
        sim.run()
        striped_time = p.value

        sim2 = Simulator()
        arr2 = make_array(sim2, RaidLevel.RAID0, 1)

        def single():
            yield arr2.read(0, 4 * CHUNK)
            return sim2.now

        p2 = sim2.process(single())
        sim2.run()
        assert striped_time < p2.value

    def test_capacity_bounds_enforced(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        with pytest.raises(ValueError):
            arr.read_plan(arr.capacity - 10, 100)

    def test_mismatched_disk_sizes_rejected(self):
        sim = Simulator()
        from repro.hardware import Disk
        disks = [Disk(sim, DISK_CAP), Disk(sim, DISK_CAP * 2)]
        with pytest.raises(ValueError):
            RaidArray(sim, disks, RaidLevel.RAID0)

    def test_empty_plan_completes_immediately(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID0, 2)

        def proc():
            yield arr.execute_plan([])
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0

    def test_replaced_disk_restores_clean_plans(self):
        sim = Simulator()
        arr = make_array(sim, RaidLevel.RAID5, 4)
        arr.mark_failed(0)
        arr.mark_replaced(0)
        assert not arr.is_degraded
        plan = arr.read_plan(0, CHUNK)
        assert len(plan) == 1
