"""Unit tests for declustered placement and distributed rebuild scaling."""

import pytest

from repro.hardware import make_disk_farm
from repro.raid import (
    DeclusteredPool,
    DeclusteredRebuildEngine,
    DeclusteredRebuildJob,
)
from repro.sim import Simulator

CHUNK = 64 * 1024
DISK_CAP = 128 * CHUNK


def make_pool(sim, n_disks=16, k=4):
    disks = make_disk_farm(sim, n_disks, DISK_CAP, name="farm")
    return DeclusteredPool(sim, disks, data_per_stripe=k, chunk_size=CHUNK)


class TestPlacement:
    def test_members_distinct_and_in_range(self):
        sim = Simulator()
        pool = make_pool(sim)
        for stripe in range(0, pool.stripe_count, 37):
            members = pool.stripe_members(stripe)
            assert len(members) == len(set(members)) == 5
            assert all(0 <= m < 16 for m in members)

    def test_placement_deterministic(self):
        a = make_pool(Simulator())
        b = make_pool(Simulator())
        for stripe in range(50):
            assert a.stripe_members(stripe) == b.stripe_members(stripe)
            assert a.chunk_slot(stripe, 3) == b.chunk_slot(stripe, 3)

    def test_load_spread_across_disks(self):
        """Every disk carries a similar share of stripes (declustering)."""
        sim = Simulator()
        pool = make_pool(sim)
        counts = [len(pool.stripes_on_disk(d)) for d in range(16)]
        mean = sum(counts) / len(counts)
        assert all(0.6 * mean < c < 1.4 * mean for c in counts)

    def test_spare_target_avoids_members_and_failed(self):
        sim = Simulator()
        pool = make_pool(sim)
        pool.mark_failed(2)
        for stripe in pool.stripes_on_disk(2)[:20]:
            spare = pool.spare_target(stripe, 2)
            assert spare not in pool.stripe_members(stripe)
            assert spare != 2

    def test_stripe_out_of_range(self):
        sim = Simulator()
        pool = make_pool(sim)
        with pytest.raises(ValueError):
            pool.stripe_members(pool.stripe_count)

    def test_too_few_disks_rejected(self):
        sim = Simulator()
        disks = make_disk_farm(sim, 4, DISK_CAP)
        with pytest.raises(ValueError):
            DeclusteredPool(sim, disks, data_per_stripe=4)


class TestPoolIo:
    def test_read_completes(self):
        sim = Simulator()
        pool = make_pool(sim)

        def proc():
            yield pool.read(0, 4 * CHUNK)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value > 0

    def test_write_touches_parity(self):
        sim = Simulator()
        pool = make_pool(sim)

        def proc():
            yield pool.write(0, CHUNK)

        sim.process(proc())
        sim.run()
        writes = sum(d.ops for d in pool.disks)
        assert writes == 2  # data chunk + parity chunk

    def test_degraded_read_reconstructs(self):
        sim = Simulator()
        pool = make_pool(sim)
        victim_stripe = 0
        members = pool.stripe_members(victim_stripe)
        pool.mark_failed(members[0])

        def proc():
            yield pool.read(0, CHUNK)  # chunk 0 lives on members[0]

        sim.process(proc())
        sim.run()
        # Peers were read instead of the failed disk.
        peer_reads = sum(pool.disks[m].ops for m in members[1:])
        assert peer_reads == len(members) - 1

    def test_out_of_range_rejected(self):
        sim = Simulator()
        pool = make_pool(sim)
        with pytest.raises(ValueError):
            pool.read(pool.capacity, 1)


def run_declustered_rebuild(workers, n_disks=16):
    sim = Simulator()
    pool = make_pool(sim, n_disks=n_disks)
    pool.mark_failed(0)
    job = DeclusteredRebuildJob(pool, 0, region_stripes=8)
    DeclusteredRebuildEngine(sim).start(job, workers=workers)
    sim.run()
    assert job.done
    assert job.progress == 1.0
    return job.finished_at - job.started_at


class TestDistributedRebuild:
    def test_rebuild_scales_with_workers(self):
        """The paper's §2.4/§6.3 claim: distributing rebuild across
        controllers speeds it up, because declustered peers/spares spread
        the I/O over the whole farm."""
        t1 = run_declustered_rebuild(1)
        t4 = run_declustered_rebuild(4)
        t8 = run_declustered_rebuild(8)
        assert t4 < 0.45 * t1  # near-linear at low worker counts
        assert t8 < t4          # still improving
        assert t8 > t1 / 16     # but not super-linear

    def test_rebuild_requires_failed_disk(self):
        sim = Simulator()
        pool = make_pool(sim)
        with pytest.raises(ValueError):
            DeclusteredRebuildJob(pool, 0)

    def test_worker_failure_resumed(self):
        sim = Simulator()
        pool = make_pool(sim)
        pool.mark_failed(0)
        job = DeclusteredRebuildJob(pool, 0, region_stripes=16)
        engine = DeclusteredRebuildEngine(sim)
        workers = engine.start(job, workers=2)

        def killer():
            yield sim.timeout(0.05)
            if workers[0].is_alive:
                workers[0].interrupt("blade failure")

        sim.process(killer())
        sim.run()
        assert job.done

    def test_zero_workers_rejected(self):
        sim = Simulator()
        pool = make_pool(sim)
        pool.mark_failed(0)
        job = DeclusteredRebuildJob(pool, 0)
        with pytest.raises(ValueError):
            DeclusteredRebuildEngine(sim).start(job, workers=0)
