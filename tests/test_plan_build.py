"""Plan.build + BuiltScenario: assertions, lifecycle, determinism."""

import dataclasses
import warnings

import pytest

from repro.core import NetStorageSystem, SystemConfig
from repro.plan import (ClusterSpec, LinkSpec, PlanDivergenceError,
                        ScenarioSpec, SiteSpec, WorkloadSpec, plan_storage,
                        run_scenario)
from repro.plan.scenario import _assert_site
from repro.sim import Simulator
from repro.sim.units import mib

SMALL = ClusterSpec(blade_count=2, disk_count=8, disk_capacity=mib(64))


def small_spec(**kw):
    kw.setdefault("cluster", SMALL)
    kw.setdefault("horizon_s", 300.0)
    kw.setdefault("workload", WorkloadSpec(clients=2, period_s=30.0))
    return ScenarioSpec(**kw)


# -- build asserts the plan ----------------------------------------------------


def test_build_single_site_matches_plan():
    plan = plan_storage(small_spec())
    built = plan.build(Simulator())
    assert built.kind == "system"
    assert isinstance(built.system, NetStorageSystem)
    sp = plan.sites[0]
    assert built.system.pool.stripe_count == sp.stripe_count
    assert built.system.pool.capacity == sp.capacity_bytes
    assert len(built.system.cluster.blades) == len(sp.blades)


def test_plan_divergence_is_detected():
    plan = plan_storage(small_spec())
    built = plan.build(Simulator())
    drifted = dataclasses.replace(plan.sites[0],
                                  stripe_count=plan.sites[0].stripe_count + 1)
    with pytest.raises(PlanDivergenceError) as exc:
        _assert_site(drifted, built.system)
    assert "stripe_count" in str(exc.value)
    bad_config = dataclasses.replace(
        plan.sites[0], config=dataclasses.replace(sp_config(plan), seed=99))
    with pytest.raises(PlanDivergenceError) as exc:
        _assert_site(bad_config, built.system)
    assert "config" in str(exc.value)


def sp_config(plan):
    return plan.sites[0].config


def test_build_geo_kind_per_site_overrides():
    spec = small_spec(
        sites=(SiteSpec("east"),
               SiteSpec("west", (0.0, 1000.0), ClusterSpec(blade_count=3))),
        links=(LinkSpec("east", "west", encrypted=True),))
    built = plan_storage(spec).build(Simulator())
    assert built.kind == "geo"
    assert set(built.systems) == {"east", "west"}
    assert len(built.systems["east"].cluster.blades) == 2
    assert len(built.systems["west"].cluster.blades) == 3
    assert built.center is not None
    assert built.site("east").name == "east"


def test_build_wan_kind():
    spec = ScenarioSpec(
        site_backing="aggregate", horizon_s=300.0,
        sites=(SiteSpec("a"), SiteSpec("b", (0.0, 500.0))),
        workload=WorkloadSpec(clients=1, period_s=30.0))
    built = plan_storage(spec).build(Simulator())
    assert built.kind == "wan"
    assert built.system is None and built.center is None
    assert built.replicator is not None and built.dr is not None
    assert set(built.network.sites) == {"a", "b"}


# -- provisioning lifecycle ----------------------------------------------------


def test_provision_is_idempotent_and_ordered():
    spec = small_spec(
        observability=True, integrity=True, scrub_passes=1, profiler=True,
        faults={"seed": 3, "faults": [
            {"at": 60.0, "kind": "blade_crash", "target": "blade1",
             "duration": 30.0}]})
    sim = Simulator()
    built = plan_storage(spec).build(sim)
    assert built.obs is sim.obs          # obs is build-time
    assert built.injector is None        # faults are provision-time
    assert built.provision() is built
    assert built.profiler is not None
    assert built.injector is not None
    assert len(built.scrubbers) == 1
    # The profiler and the injector's trackers joined the mgmt plane.
    assert built.obs.mgmt._attachments["profiler"] is built.profiler
    assert "blade1" in built.obs.mgmt.poll()
    # Idempotent: provisioning again arms nothing twice.
    injector = built.injector
    assert built.provision().injector is injector
    assert len(built.scrubbers) == 1


def test_context_manager_provisions():
    sim = Simulator()
    with plan_storage(small_spec()).build(sim) as built:
        assert built._provisioned
        result = built.run()
    assert result.ok > 0 and result.failed == 0


def test_geo_site_loss_fails_ops_not_the_kernel():
    """A mid-read site loss in the full geo composition must surface as
    failed client iterations through the migration manager's process
    boundary — never crash the kernel."""
    spec = small_spec(
        seed=3, horizon_s=240.0,
        sites=(SiteSpec("east"), SiteSpec("west", (0.0, 800.0))),
        workload=WorkloadSpec(clients=2, period_s=30.0),
        faults={"seed": 1, "faults": [
            {"at": 60.0, "kind": "site_loss", "target": "west",
             "duration": 60.0}]})
    result = run_scenario(spec)
    assert result.ok > 0
    assert result.failed > 0
    assert run_scenario(spec).fingerprint == result.fingerprint


def test_wan_faults_drive_dr_failover():
    spec = ScenarioSpec(
        site_backing="aggregate", horizon_s=600.0,
        sites=(SiteSpec("a"), SiteSpec("b", (0.0, 500.0))),
        workload=WorkloadSpec(clients=2, period_s=30.0, geo_mode="sync"),
        faults={"seed": 1, "faults": [
            {"at": 120.0, "kind": "site_loss", "target": "a",
             "duration": 300.0}]})
    result = run_scenario(spec)
    # The armed site loss surfaced through the injector-driven DR path:
    # clients kept iterating, and the outage shows up as failed ops.
    assert result.ok > 0
    assert result.failed > 0


# -- determinism ---------------------------------------------------------------


def test_same_spec_and_seed_byte_identical_traces():
    spec = small_spec(seed=21, observability=True,
                      faults={"seed": 4, "faults": [
                          {"at": 45.0, "kind": "disk_fail",
                           "target": "disk3", "duration": 20.0}]})

    def trace():
        sim = Simulator()
        with plan_storage(spec).build(sim) as built:
            built.run()
            return built.system.trace_json()

    assert trace() == trace()


def test_same_spec_and_seed_same_fingerprint():
    spec = small_spec(seed=9)
    r1, r2 = run_scenario(spec), run_scenario(spec)
    assert r1.fingerprint == r2.fingerprint
    assert r1.as_dict() == r2.as_dict()
    # A different seed perturbs the layout and hence the outcome digest.
    r3 = run_scenario(dataclasses.replace(spec, seed=10))
    assert r3.fingerprint != r1.fingerprint


def test_shared_obs_bundle_across_geo_sites():
    spec = small_spec(
        observability=True,
        sites=(SiteSpec("east"), SiteSpec("west", (0.0, 900.0))))
    sim = Simulator()
    built = plan_storage(spec).build(sim)
    # Both per-site systems joined the one bundle instead of overwriting.
    assert built.systems["east"].obs is sim.obs
    assert built.systems["west"].obs is sim.obs


# -- the deprecated tuple-dict MetadataCenter shim -----------------------------


def test_metadata_center_tuple_dict_shim_warns_and_works():
    from repro.geo import MetadataCenter
    sim = Simulator()
    with pytest.warns(DeprecationWarning, match="SiteSpec"):
        center = MetadataCenter(
            sim, {"a": (0.0, 0.0), "b": (0.0, 700.0)},
            config=SystemConfig(blade_count=2, disk_count=8,
                                disk_capacity=mib(64)))
    assert set(center.systems) == {"a", "b"}
    assert center.systems["a"].config.name == "a"


def test_metadata_center_site_spec_list_does_not_warn():
    from repro.geo import MetadataCenter
    sim = Simulator()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        center = MetadataCenter(
            sim, [SiteSpec("a"), SiteSpec("b", (0.0, 700.0))],
            config=SystemConfig(blade_count=2, disk_count=8,
                                disk_capacity=mib(64)))
    assert set(center.systems) == {"a", "b"}
