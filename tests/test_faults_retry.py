"""RetryPolicy / retry_call: backoff shape, budgets, and fault filtering."""

import pytest

from repro.faults import NO_RETRY, RetryExhausted, RetryPolicy, retry, retry_call
from repro.sim import RngStreams, Simulator
from repro.sim.faults import TransientIOError, is_fault


def _failing_op(sim, log, fail_times, value="ok"):
    """An op that fails with TransientIOError ``fail_times`` times."""
    def op():
        ev = sim.event()
        log.append(sim.now)
        if len(log) <= fail_times:
            ev.fail(TransientIOError(f"glitch {len(log)}"))
        else:
            ev.succeed(value)
        return ev
    return op


class TestPolicy:
    def test_backoff_is_capped_exponential(self):
        p = RetryPolicy(attempts=6, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5, jitter=0.0)
        assert [p.backoff(i) for i in range(1, 6)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_backoff_deterministic_under_fixed_seed(self):
        p = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.5)
        a = [p.backoff(i, RngStreams(9).stream("retry"))
             for i in range(1, 4)]
        b = [p.backoff(i, RngStreams(9).stream("retry"))
             for i in range(1, 4)]
        assert a == b
        # Jitter inflates, never shrinks, and stays within the bound.
        for i, delay in enumerate(a, start=1):
            base = RetryPolicy(attempts=4, base_delay=0.1).backoff(i)
            assert base <= delay <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        sim = Simulator()
        log = []
        op = _failing_op(sim, log, fail_times=2)
        policy = RetryPolicy(attempts=4, base_delay=0.25, multiplier=2.0)
        done = retry(sim, op, policy)
        assert sim.run(until=done) == "ok"
        assert len(log) == 3
        # Attempts spaced by the deterministic backoff: 0, 0.25, 0.75.
        assert log == [0.0, 0.25, 0.75]

    def test_exhaustion_surfaces_last_underlying_error(self):
        sim = Simulator()
        log = []
        op = _failing_op(sim, log, fail_times=99)
        done = retry(sim, op, RetryPolicy(attempts=3, base_delay=0.01))
        with pytest.raises(RetryExhausted) as info:
            sim.run(until=done)
        exc = info.value
        assert exc.attempts == 3
        # The error that mattered — the final attempt's — not a generic
        # "gave up", and chained for tracebacks/classification.
        assert "glitch 3" in str(exc.last_error)
        assert exc.__cause__ is exc.last_error
        assert is_fault(exc)

    def test_non_fault_errors_never_retried(self):
        sim = Simulator()
        calls = []

        def op():
            ev = sim.event()
            calls.append(1)
            ev.fail(TypeError("model bug"))
            return ev

        done = retry(sim, op, RetryPolicy(attempts=5, base_delay=0.01))
        with pytest.raises(TypeError):
            sim.run(until=done)
        assert len(calls) == 1  # no second attempt for a programming error

    def test_deadline_bounds_simulated_time(self):
        sim = Simulator()
        log = []
        op = _failing_op(sim, log, fail_times=99)
        policy = RetryPolicy(attempts=50, base_delay=1.0, multiplier=1.0,
                             deadline=2.5)
        done = retry(sim, op, policy)
        with pytest.raises(RetryExhausted):
            sim.run(until=done)
        # Attempts at t=0, 1, 2; the retry that would start at t=3 is
        # past the 2.5 s deadline and is never made.
        assert log == [0.0, 1.0, 2.0]

    def test_no_retry_passthrough_preserves_exception_type(self):
        sim = Simulator()
        log = []
        op = _failing_op(sim, log, fail_times=1)
        done = retry(sim, op, NO_RETRY)
        # Single-attempt policy: the original fault, NOT RetryExhausted.
        with pytest.raises(TransientIOError):
            sim.run(until=done)
        assert len(log) == 1

    def test_usable_as_process_fragment(self):
        sim = Simulator()
        log = []
        op = _failing_op(sim, log, fail_times=1, value=42)
        results = []

        def proc():
            value = yield from retry_call(
                sim, op, RetryPolicy(attempts=2, base_delay=0.5))
            results.append(value)

        sim.process(proc())
        sim.run()
        assert results == [42]
        assert sim.now == 0.5
