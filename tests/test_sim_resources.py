"""Unit tests for Resource / PriorityResource / Store / Container."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = []

    def user(tag, hold):
        req = res.request()
        yield req
        granted.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(user("a", 5.0))
    sim.process(user("b", 5.0))
    sim.process(user("c", 1.0))
    sim.run()
    assert granted == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_queue_is_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(1.0)
        res.release(req)

    for tag in "abcd":
        sim.process(user(tag))
    sim.run()
    assert order == list("abcd")


def test_resource_release_unqueued_pending_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def impatient():
        req = res.request()
        result = yield (req | sim.timeout(1.0))
        if req not in result:
            res.release(req)  # gave up: cancel from queue
        return sim.now

    sim.process(holder())
    p = sim.process(impatient())
    sim.run()
    assert p.value == 1.0
    assert res.queue_length == 0


def test_resource_rejects_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_release_foreign_request_rejected():
    sim = Simulator()
    res_a = Resource(sim)
    res_b = Resource(sim)
    req = res_a.request()
    with pytest.raises(ValueError):
        res_b.release(req)
    res_a.release(req)


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def user(tag, prio, start):
        yield sim.timeout(start)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        yield sim.timeout(1.0)
        res.release(req)

    sim.process(holder())
    sim.process(user("background", 10.0, 1.0))
    sim.process(user("foreground", 0.0, 2.0))
    sim.run()
    assert order == ["foreground", "background"]


def test_priority_resource_fifo_within_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def user(tag):
        req = res.request(priority=1.0)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    for tag in "xyz":
        sim.process(user(tag))
    sim.run()
    assert order == list("xyz")


def test_priority_resource_cancel_waiter():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    held = res.request()
    waiting = res.request(priority=1.0)
    res.release(waiting)  # cancel before grant
    assert res.queue_length == 0
    res.release(held)
    assert res.in_use == 0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")

    def consumer():
        a = yield store.get()
        b = yield store.get()
        return [a, b]

    p = sim.process(consumer())
    sim.run()
    assert p.value == ["x", "y"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(3.0)
        store.put("late")

    p = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert p.value == (3.0, "late")


def test_store_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(tag):
        item = yield store.get()
        results.append((tag, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield sim.timeout(1.0)
        store.put(1)
        store.put(2)

    sim.process(producer())
    sim.run()
    assert results == [("first", 1), ("second", 2)]


def test_container_take_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=10.0)

    def taker():
        yield tank.take(30.0)
        return sim.now

    def filler():
        yield sim.timeout(2.0)
        tank.put(25.0)

    p = sim.process(taker())
    sim.process(filler())
    sim.run()
    assert p.value == 2.0
    assert tank.level == pytest.approx(5.0)


def test_container_overflow_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=8.0)
    with pytest.raises(RuntimeError):
        tank.put(5.0)


def test_container_impossible_take_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    with pytest.raises(ValueError):
        tank.take(20.0)


def test_container_fifo_no_starvation():
    """A large take queued first must not be starved by small takes."""
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=0.0)
    order = []

    def taker(tag, amount):
        yield tank.take(amount)
        order.append((tag, sim.now))

    sim.process(taker("big", 50.0))
    sim.process(taker("small", 5.0))

    def filler():
        for _ in range(6):
            yield sim.timeout(1.0)
            tank.put(10.0)

    sim.process(filler())
    sim.run()
    assert order == [("big", 5.0), ("small", 6.0)]
