"""Zero-cost observability contract: instrumentation must be invisible.

The telemetry layers — tracer, event log, labeled series, SLO monitor,
kernel profiler — are observers.  Turning any of them on or off must not
change a single simulated timestamp or result; turning them all off must
leave the hot paths at one ``sim.obs is None`` attribute test with
nothing allocated behind it.
"""

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.sim.units import mib


def _run_workload(observability: bool, profiler: bool = False,
                  seed: int = 11):
    """Quickstart-sized workload; returns (sim, system, io completion log)."""
    sim = Simulator()
    if profiler:
        sim.attach_profiler()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        seed=seed, observability=observability))
    system.start()
    system.create("/projects/results.h5")
    system.create("/scratch/tmp")
    log = []

    def client():
        yield system.write("/projects/results.h5", 0, mib(2))
        log.append(("w1", sim.now))
        yield system.read("/projects/results.h5", 0, mib(2))
        log.append(("r1", sim.now))
        yield system.write("/scratch/tmp", 0, mib(1))
        log.append(("w2", sim.now))
        yield system.read("/scratch/tmp", 0, mib(1))
        log.append(("r2", sim.now))

    sim.process(client())
    sim.run(until=30.0)
    return sim, system, log


def test_observability_off_leaves_everything_inert():
    sim, system, log = _run_workload(observability=False)
    assert sim.obs is None
    assert sim.profiler is None
    assert system.obs is None
    assert len(log) == 4


def test_observability_does_not_change_simulated_time():
    # Same seed, instrumentation on vs off: every client completion lands
    # at the identical simulated instant, and the kernel clock agrees.
    sim_off, _sys_off, log_off = _run_workload(observability=False)
    sim_on, sys_on, log_on = _run_workload(observability=True)
    assert log_on == log_off
    assert sim_on.now == sim_off.now
    # And the instrumented run actually observed things: the cache and
    # links emitted labeled series while timing stayed untouched.
    assert len(sys_on.obs.series) > 0
    assert sys_on.obs.series.match("cache.write_latency_s")


def test_profiler_does_not_change_simulated_time():
    _sim_plain, _s, log_plain = _run_workload(observability=True)
    sim_prof, _s2, log_prof = _run_workload(observability=True,
                                            profiler=True)
    assert log_prof == log_plain
    assert sim_prof.profiler.events_seen == sim_prof.events_processed


def test_series_and_slo_stay_empty_when_disabled():
    sim, _system, _log = _run_workload(observability=False)
    # Nothing may have lazily created an observability bundle.
    assert sim.obs is None
    # A fresh bundle attached after the fact starts empty: no emitter
    # buffered anything while obs was off.
    from repro.obs import enable
    obs = enable(sim)
    assert len(obs.series) == 0
    assert obs.slo.alerts == []
    assert obs.slo.evaluations == 0


def test_event_counts_identical_with_observability_off_and_on_reruns():
    # Determinism of the uninstrumented fast path itself: two obs-off
    # runs dispatch exactly the same number of kernel events.
    a, _sa, _la = _run_workload(observability=False)
    b, _sb, _lb = _run_workload(observability=False)
    assert a.events_processed == b.events_processed
    assert a.now == b.now
