"""XTEA correctness against an independent reference implementation.

The production cipher in :mod:`repro.security.crypto` is validated here
against a from-scratch reimplementation (including the XTEA *decrypt*
direction, which the CTR-mode production code never needs), plus
algebraic sanity properties of the keystream construction.
"""

import struct

from repro.security.crypto import StreamCipher, _xtea_encrypt_block

_MASK = 0xFFFFFFFF
_DELTA = 0x9E3779B9


def reference_xtea_encrypt(v0, v1, key, rounds=32):
    """Straight transcription of the Needham–Wheeler reference code."""
    total = 0
    for _ in range(rounds):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (total + key[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (total + key[(total >> 11) & 3]))) & _MASK
    return v0, v1


def reference_xtea_decrypt(v0, v1, key, rounds=32):
    total = (_DELTA * rounds) & _MASK
    for _ in range(rounds):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (total + key[(total >> 11) & 3]))) & _MASK
        total = (total - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (total + key[total & 3]))) & _MASK
    return v0, v1


def test_block_cipher_matches_reference():
    key = (0x00010203, 0x04050607, 0x08090A0B, 0x0C0D0E0F)
    for v0, v1 in [(0, 0), (0x41424344, 0x45464748),
                   (0xFFFFFFFF, 0xFFFFFFFF), (0xDEADBEEF, 0xCAFEBABE)]:
        assert _xtea_encrypt_block(v0, v1, key) == \
            reference_xtea_encrypt(v0, v1, key)


def test_decrypt_inverts_encrypt():
    key = (0x12345678, 0x9ABCDEF0, 0x0FEDCBA9, 0x87654321)
    for v0, v1 in [(1, 2), (0x01020304, 0x05060708)]:
        c0, c1 = _xtea_encrypt_block(v0, v1, key)
        assert reference_xtea_decrypt(c0, c1, key) == (v0, v1)


def test_avalanche_single_bit():
    """Flipping one plaintext bit changes roughly half the output bits."""
    key = (1, 2, 3, 4)
    a = _xtea_encrypt_block(0, 0, key)
    b = _xtea_encrypt_block(1, 0, key)
    diff = bin((a[0] ^ b[0]) | ((a[1] ^ b[1]) << 32)).count("1")
    assert 16 <= diff <= 48


def test_keystream_built_from_blocks():
    """The CTR keystream is exactly the concatenated block encryptions of
    (nonce_hi, nonce^counter)."""
    raw_key = bytes(range(16))
    cipher = StreamCipher(raw_key)
    key = struct.unpack(">4I", raw_key)
    nonce = 0x0011223344556677
    stream = cipher.keystream(nonce, 24)
    expected = b""
    for counter in range(3):
        v0 = (nonce >> 32) & _MASK
        v1 = (nonce ^ counter) & _MASK
        expected += struct.pack(">2I",
                                *reference_xtea_encrypt(v0, v1, key))
    assert stream == expected


def test_keystream_blocks_distinct():
    cipher = StreamCipher(bytes(range(16)))
    stream = cipher.keystream(42, 8 * 64)
    blocks = {stream[i:i + 8] for i in range(0, len(stream), 8)}
    assert len(blocks) == 64  # CTR never repeats within a nonce
