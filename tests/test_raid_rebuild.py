"""Unit tests for the rebuild engine: scaling, priority, worker failover."""

import pytest

from repro.hardware import make_disk_farm
from repro.raid import RaidArray, RaidLevel, RebuildEngine, RebuildJob
from repro.sim import Simulator

CHUNK = 64 * 1024
DISK_CAP = 256 * CHUNK  # 16 MiB per disk → 256 stripes


def degraded_array(sim, level=RaidLevel.RAID5, n=4):
    arr = RaidArray(sim, make_disk_farm(sim, n, DISK_CAP), level,
                    chunk_size=CHUNK)
    arr.mark_failed(0)
    arr.mark_replaced(0)
    return arr


def run_rebuild(workers, level=RaidLevel.RAID5, n=4):
    sim = Simulator()
    arr = degraded_array(sim, level, n)
    job = RebuildJob(arr, 0, region_stripes=16)
    engine = RebuildEngine(sim)
    engine.start(job, workers=workers)
    sim.run()
    assert job.done
    return job.finished_at - job.started_at


def test_rebuild_completes_and_tracks_progress():
    sim = Simulator()
    arr = degraded_array(sim)
    job = RebuildJob(arr, 0, region_stripes=16)
    assert job.progress == 0.0
    RebuildEngine(sim).start(job, workers=2)
    sim.run()
    assert job.done
    assert job.progress == 1.0
    assert job.completed_stripes == job.total_stripes
    # The replacement disk received every stripe chunk.
    assert arr.disks[0].bytes_moved >= job.total_stripes * CHUNK


def test_narrow_array_rebuild_does_not_scale_with_workers():
    """On a narrow 4-disk group, extra workers mostly add head thrash —
    the physical reason the paper's distributed rebuild needs the wide,
    declustered pool (see test_raid_decluster.py for the scaling case)."""
    t1 = run_rebuild(1)
    t4 = run_rebuild(4)
    # No miracle: within 3x either way, but definitely completes.
    assert 0.3 * t1 < t4 < 4.0 * t1


def test_rebuild_requires_replaced_disk():
    sim = Simulator()
    arr = RaidArray(sim, make_disk_farm(sim, 4, DISK_CAP), RaidLevel.RAID5,
                    chunk_size=CHUNK)
    arr.mark_failed(0)
    with pytest.raises(ValueError):
        RebuildJob(arr, 0)


def test_zero_workers_rejected():
    sim = Simulator()
    arr = degraded_array(sim)
    job = RebuildJob(arr, 0)
    with pytest.raises(ValueError):
        RebuildEngine(sim).start(job, workers=0)


def test_worker_failure_mid_rebuild_is_resumed_by_survivors():
    sim = Simulator()
    arr = degraded_array(sim)
    job = RebuildJob(arr, 0, region_stripes=32)
    engine = RebuildEngine(sim)
    workers = engine.start(job, workers=2)

    def killer():
        yield sim.timeout(0.2)
        if workers[0].is_alive:
            workers[0].interrupt("blade died")

    sim.process(killer())
    sim.run()
    # The surviving worker finished everything, including the dead
    # worker's returned region.
    assert job.done
    assert job.progress == 1.0


def test_add_worker_scales_out_in_flight():
    sim = Simulator()
    arr = degraded_array(sim)
    job = RebuildJob(arr, 0, region_stripes=16)
    engine = RebuildEngine(sim)
    engine.start(job, workers=1)

    def scaler():
        yield sim.timeout(0.1)
        engine.add_worker(job)
        engine.add_worker(job)

    sim.process(scaler())
    sim.run()
    assert job.done


def test_raid1_rebuild_copies_from_mirror():
    sim = Simulator()
    arr = RaidArray(sim, make_disk_farm(sim, 2, DISK_CAP), RaidLevel.RAID1,
                    chunk_size=CHUNK)
    arr.mark_failed(1)
    arr.mark_replaced(1)
    job = RebuildJob(arr, 1, region_stripes=64)
    RebuildEngine(sim).start(job, workers=1)
    sim.run()
    assert job.done
    assert arr.disks[0].bytes_moved >= job.total_stripes * CHUNK  # source reads


def test_raid10_rebuild_uses_pair_partner():
    sim = Simulator()
    arr = RaidArray(sim, make_disk_farm(sim, 4, DISK_CAP), RaidLevel.RAID10,
                    chunk_size=CHUNK)
    arr.mark_failed(2)
    arr.mark_replaced(2)
    job = RebuildJob(arr, 2, region_stripes=64)
    RebuildEngine(sim).start(job, workers=1)
    sim.run()
    assert job.done
    # Partner of disk 2 is disk 3; disks 0/1 see no read traffic.
    assert arr.disks[3].bytes_moved > 0
    assert arr.disks[0].bytes_moved == 0


def test_rebuild_yields_to_foreground_io():
    """Foreground latency during rebuild stays lower than rebuild-priority IO."""
    sim = Simulator()
    arr = degraded_array(sim)
    job = RebuildJob(arr, 0, region_stripes=16)
    RebuildEngine(sim, io_priority=10.0).start(job, workers=2)
    latencies = []

    def foreground():
        for _ in range(50):
            start = sim.now
            yield arr.disks[1].read(0, CHUNK, priority=0.0)
            latencies.append(sim.now - start)
            yield sim.timeout(0.002)

    sim.process(foreground())
    sim.run()
    # Foreground ops jump the rebuild queue: mean latency stays within a
    # couple of service times of an unloaded disk.
    unloaded = arr.disks[1].service_time(0, CHUNK) + 0.008
    assert sum(latencies) / len(latencies) < 3 * unloaded
