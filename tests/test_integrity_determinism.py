"""The zero-cost contract: integrity accounting must be trace-invisible.

``SystemConfig(integrity=True)`` with no corruption injected (and no
scrub daemon started) must produce byte-identical traces to a run with
integrity off — under both kernel pooling modes — and an armed-but-empty
fault campaign must change nothing either.
"""

from repro import FaultPlan, NetStorageSystem, Simulator, SystemConfig
from repro.sim.units import mib


def _trace(pooling: bool, integrity: bool, arm_empty_plan: bool = False,
           seed: int = 11) -> str:
    sim = Simulator(pooling=pooling)
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        seed=seed, observability=True, integrity=integrity))
    system.start()
    system.create("/projects/results.h5")
    system.create("/scratch/tmp")
    if arm_empty_plan:
        system.attach_faults(FaultPlan())

    def client():
        yield system.write("/projects/results.h5", 0, mib(2))
        yield system.read("/projects/results.h5", 0, mib(2))
        yield system.write("/scratch/tmp", 0, mib(1))
        yield system.read("/scratch/tmp", 0, mib(1))

    sim.process(client())
    sim.run(until=30.0)
    return system.trace_json()


def test_integrity_off_vs_on_byte_identical():
    assert _trace(pooling=True, integrity=False) == \
        _trace(pooling=True, integrity=True)


def test_integrity_byte_identical_without_pooling():
    assert _trace(pooling=False, integrity=False) == \
        _trace(pooling=False, integrity=True)


def test_pooling_invariance_survives_integrity():
    assert _trace(pooling=True, integrity=True) == \
        _trace(pooling=False, integrity=True)


def test_empty_campaign_is_trace_neutral():
    # Arming an empty FaultPlan (the control campaign) with integrity on
    # must cost nothing either.
    assert _trace(pooling=True, integrity=True) == \
        _trace(pooling=True, integrity=True, arm_empty_plan=True)


def test_clean_run_summary_is_all_zero():
    sim = Simulator()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        seed=11, integrity=True))
    system.start()
    system.create("/a")
    sim.run(until=system.write("/a", 0, mib(1)))
    sim.run(until=system.read("/a", 0, mib(1)))
    assert all(v == 0.0 for v in system.integrity.summary().values())
    # ... and the ledger is surfaced through the management report.
    assert system.report()["integrity.injected"] == 0.0
