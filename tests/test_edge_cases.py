"""Edge-case sweep across modules: paths not covered by the main suites."""

import pytest

from repro.core import format_table
from repro.geo import Site
from repro.sim import Simulator, Store
from repro.sim.units import fmt_bytes, fmt_rate, gbps, mib


class TestReportFormatting:
    def test_numeric_right_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = table.splitlines()
        # Numeric cells end at the same column (right-aligned).
        assert lines[2].rstrip().endswith("1.5")
        assert lines[3].rstrip().endswith("22.25")

    def test_large_and_tiny_floats_use_compact_form(self):
        table = format_table(["v"], [[123456.0], [0.000012], [0.0]])
        assert "1.23e+05" in table
        assert "1.2e-05" in table

    def test_title_and_empty_rows(self):
        table = format_table(["a"], [], title="empty")
        assert table.startswith("empty")
        assert "-" in table


class TestUnitsFormatting:
    def test_fmt_bytes_extremes(self):
        assert fmt_bytes(0) == "0 B"
        assert "PiB" in fmt_bytes(float(1 << 62))

    def test_fmt_rate_small(self):
        assert "Mb/s" in fmt_rate(1000.0)


class TestSiteBackendDelegation:
    def test_backend_replaces_store_model(self):
        sim = Simulator()
        calls = []

        def backend(nbytes):
            calls.append(nbytes)
            return sim.timeout(0.5, value=nbytes)

        site = Site(sim, "s", backend_read=backend, backend_write=backend)

        def proc():
            yield site.store_read(100)
            yield site.store_write(200)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert calls == [100, 200]
        assert p.value == pytest.approx(1.0)  # backend timing, not link
        assert site.bytes_read == 100
        assert site.bytes_written == 200

    def test_failed_site_beats_backend(self):
        sim = Simulator()
        site = Site(sim, "s", backend_read=lambda n: sim.timeout(0, value=n))
        site.fail()
        caught = []

        def proc():
            try:
                yield site.store_read(10)
            except Exception:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]


class TestStoreAndSimMisc:
    def test_store_len_tracks_items(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_event_or_operator(self):
        sim = Simulator()

        def proc():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(2.0, value="b")
            result = yield (a | b)
            return list(result.values())

        p = sim.process(proc())
        sim.run()
        assert p.value == ["a"]


class TestDiskSequentialAfterRepair:
    def test_repair_resets_head_position(self):
        from repro.hardware import Disk
        sim = Simulator()
        disk = Disk(sim, mib(64))

        def proc():
            yield disk.read(0, mib(1))
            # Sequential continuation would be cheap...
            seq = disk.service_time(mib(1), mib(1))
            disk.fail()
            disk.repair()
            # ...but a replaced drive has no head-position history.
            fresh = disk.service_time(mib(1), mib(1))
            return seq, fresh

        p = sim.process(proc())
        sim.run()
        seq, fresh = p.value
        assert fresh > seq


class TestNasMaxTransferEdge:
    def test_partial_final_rpc(self):
        from repro.fs import ParallelFileSystem
        from repro.protocols import NasServer
        from repro.sim.units import kib
        from repro.virt import Allocator, StoragePool
        sim = Simulator()
        alloc = Allocator([StoragePool("p", 256 * kib(64), kib(64))])
        pfs = ParallelFileSystem(alloc, [0], stripe_unit=kib(64))
        pfs.create("/f")
        pfs.write("/f", 0, kib(40))
        nas = NasServer(sim, pfs, lambda b, k, o: sim.timeout(0.0001),
                        max_transfer=kib(32))

        def proc():
            got = yield nas.read("/f", 0, kib(40))
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == kib(40)
        assert nas.rpc_count == 2  # 32 KiB + 8 KiB


class TestMirrorRoundRobinUnderLoad:
    def test_raid1_reads_split_between_mirrors(self):
        from repro.hardware import make_disk_farm
        from repro.raid import RaidArray, RaidLevel
        sim = Simulator()
        kb = 64 * 1024
        arr = RaidArray(sim, make_disk_farm(sim, 2, mib(16)),
                        RaidLevel.RAID1, chunk_size=kb)

        def proc():
            for i in range(8):
                yield arr.read((i % 4) * kb, kb)

        sim.process(proc())
        sim.run()
        ops = [d.ops for d in arr.disks]
        assert ops[0] == ops[1] == 4


class TestWanEncryptionDefaults:
    def test_metacenter_links_encrypted_by_default(self):
        from repro.core import SystemConfig
        from repro.geo import MetadataCenter
        from repro.plan import SiteSpec
        sim = Simulator()
        center = MetadataCenter(sim, [SiteSpec("a"),
                                      SiteSpec("b", (0.0, 100.0))],
                                config=SystemConfig(
                                    blade_count=2, disk_count=8,
                                    disk_capacity=mib(32),
                                    cache_bytes_per_blade=mib(4)))
        center.connect("a", "b", bandwidth=gbps(2.5))
        link = center.network.route(center.site("a"), center.site("b"))[0]
        assert link.encrypted
        assert link.crypto_mode == "hardware"
        assert link.bandwidth == pytest.approx(gbps(2.5))  # wire speed kept
