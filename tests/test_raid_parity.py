"""Parity math: unit tests plus hypothesis property tests on GF(256)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raid import (
    gf_div,
    gf_mul,
    gf_mul_block,
    gf_pow,
    mirror_copies,
    raid5_reconstruct,
    raid6_pq,
    raid6_recover_one_data,
    raid6_recover_two_data,
    xor_parity,
)

gf_elem = st.integers(min_value=0, max_value=255)
gf_nonzero = st.integers(min_value=1, max_value=255)


class TestGF256Field:
    @given(gf_elem, gf_elem)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(gf_elem, gf_elem, gf_elem)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(gf_elem)
    def test_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(gf_elem, gf_nonzero)
    def test_div_inverts_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    @given(gf_elem, gf_elem, gf_elem)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_generator_has_full_order(self):
        """g=2 generates the whole multiplicative group (order 255)."""
        seen = set()
        for e in range(255):
            seen.add(gf_pow(2, e))
        assert len(seen) == 255

    @given(gf_elem, st.integers(min_value=0, max_value=300))
    def test_pow_matches_repeated_mul(self, base, e):
        expected = 1
        for _ in range(e):
            expected = gf_mul(expected, base)
        assert gf_pow(base, e) == expected or (base == 0 and e > 0)

    @given(st.binary(min_size=1, max_size=64), gf_elem)
    def test_block_mul_matches_scalar(self, data, scalar):
        block = np.frombuffer(data, dtype=np.uint8)
        out = gf_mul_block(block, scalar)
        assert [gf_mul(int(v), scalar) for v in block] == out.tolist()


class TestXorParity:
    def test_known_example(self):
        p = xor_parity([b"\x0f\xf0", b"\xff\x00"])
        assert p.tobytes() == b"\xf0\xf0"

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            xor_parity([b"ab", b"abc"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            xor_parity([])

    @given(st.lists(st.binary(min_size=16, max_size=16), min_size=2, max_size=8))
    def test_any_single_block_recoverable(self, blocks):
        parity = xor_parity(blocks)
        for missing in range(len(blocks)):
            survivors = [b for i, b in enumerate(blocks) if i != missing]
            rebuilt = raid5_reconstruct([*survivors, parity])
            assert rebuilt.tobytes() == blocks[missing]


class TestRaid6:
    def _blocks(self, rng, count, size=32):
        return [rng.integers(0, 256, size=size, dtype=np.uint8)
                for _ in range(count)]

    def test_pq_shapes(self):
        rng = np.random.default_rng(0)
        blocks = self._blocks(rng, 4)
        p, q = raid6_pq(blocks)
        assert p.shape == q.shape == blocks[0].shape
        assert not np.array_equal(p, q)

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
    def test_recover_one(self, count, seed):
        rng = np.random.default_rng(seed)
        blocks = self._blocks(rng, count)
        p, _q = raid6_pq(blocks)
        for missing in range(count):
            holed = [b if i != missing else None for i, b in enumerate(blocks)]
            rebuilt = raid6_recover_one_data(holed, p)
            assert np.array_equal(rebuilt, blocks[missing])

    @settings(max_examples=25)
    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=2**32 - 1))
    def test_recover_two(self, count, seed):
        rng = np.random.default_rng(seed)
        blocks = self._blocks(rng, count)
        p, q = raid6_pq(blocks)
        for x in range(count):
            for y in range(x + 1, count):
                holed = [b if i not in (x, y) else None
                         for i, b in enumerate(blocks)]
                dx, dy = raid6_recover_two_data(holed, p, q)
                assert np.array_equal(dx, blocks[x])
                assert np.array_equal(dy, blocks[y])

    def test_recover_two_requires_two_holes(self):
        rng = np.random.default_rng(1)
        blocks = self._blocks(rng, 4)
        p, q = raid6_pq(blocks)
        with pytest.raises(ValueError):
            raid6_recover_two_data(blocks, p, q)

    def test_recover_one_requires_one_hole(self):
        rng = np.random.default_rng(1)
        blocks = self._blocks(rng, 4)
        p, _q = raid6_pq(blocks)
        with pytest.raises(ValueError):
            raid6_recover_one_data([None, None, blocks[2], blocks[3]], p)


def test_mirror_copies():
    copies = mirror_copies(b"data", 3)
    assert len(copies) == 3
    assert all(c.tobytes() == b"data" for c in copies)
    # Copies are independent buffers.
    copies[0][0] = 0
    assert copies[1].tobytes() == b"data"
    with pytest.raises(ValueError):
        mirror_copies(b"data", 0)
