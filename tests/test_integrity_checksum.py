"""The functional checksum layer: the properties the bookkeeping model
assumes, proved against real bytes (see repro/integrity/checksum.py)."""

import pytest

from repro.integrity.checksum import (block_checksum, flip_bit,
                                      identity_seed, torn_write,
                                      verify_block)

PAYLOAD = bytes(range(256)) * 2  # 512 B, every byte value present


def test_checksum_roundtrip_verifies():
    ck = block_checksum(PAYLOAD, "disk3", 4096)
    assert verify_block(PAYLOAD, "disk3", 4096, ck)


def test_checksum_is_deterministic():
    assert block_checksum(PAYLOAD, "disk3", 4096) == \
        block_checksum(bytes(PAYLOAD), "disk3", 4096)


def test_identity_seed_differs_by_domain_and_address():
    seeds = {identity_seed("disk0", 0), identity_seed("disk1", 0),
             identity_seed("disk0", 512), identity_seed("cache", 0)}
    assert len(seeds) == 4


def test_every_flipped_bit_is_detected():
    ck = block_checksum(PAYLOAD, "disk0", 0)
    # CRC32 detects any single-bit error; sample densely across the block.
    for bit in range(0, 8 * len(PAYLOAD), 7):
        assert not verify_block(flip_bit(PAYLOAD, bit), "disk0", 0, ck)


def test_flip_bit_out_of_range_rejected():
    with pytest.raises(ValueError):
        flip_bit(PAYLOAD, 8 * len(PAYLOAD))
    with pytest.raises(ValueError):
        flip_bit(PAYLOAD, -1)


def test_torn_write_detected_at_any_partial_boundary():
    old = bytes(len(PAYLOAD))  # what was on media before
    ck_new = block_checksum(PAYLOAD, "disk0", 0)
    for boundary in (0, 1, len(PAYLOAD) // 2, len(PAYLOAD) - 1):
        torn = torn_write(old, PAYLOAD, boundary)
        assert not verify_block(torn, "disk0", 0, ck_new)
    # boundary == len means the write completed: verification passes.
    assert verify_block(torn_write(old, PAYLOAD, len(PAYLOAD)),
                        "disk0", 0, ck_new)


def test_torn_write_validates_inputs():
    with pytest.raises(ValueError):
        torn_write(b"short", PAYLOAD, 0)
    with pytest.raises(ValueError):
        torn_write(bytes(len(PAYLOAD)), PAYLOAD, len(PAYLOAD) + 1)


def test_misdirected_write_fails_verification():
    # Perfectly valid bytes at the wrong address: the identity seed under
    # the CRC differs, so the stored checksum cannot match.
    ck_at_home = block_checksum(PAYLOAD, "disk0", 4096)
    assert not verify_block(PAYLOAD, "disk0", 8192, ck_at_home)
    assert not verify_block(PAYLOAD, "disk7", 4096, ck_at_home)
