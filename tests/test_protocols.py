"""Unit tests for protocol exports: streaming, SCSI, iSCSI, NAS, HTTP, FTP."""

import pytest

from repro.hardware import ControllerBlade
from repro.protocols import (
    DirectHttpExport,
    FtpExport,
    IscsiPortal,
    NasServer,
    ScsiTarget,
    ServerMediatedExport,
    figure1_configuration,
)
from repro.security import LunMaskingTable, MaskingViolation
from repro.sim import FairShareLink, Simulator
from repro.sim.units import gb, gbps, kib, mib


def run_stream(blade_count, total=gb(2), port_rate_gb=10.0):
    sim = Simulator()
    agg = figure1_configuration(sim, blade_count=blade_count,
                                port_rate_gb=port_rate_gb)
    ev = agg.stream(total)
    result = sim.run(until=ev)
    return result


class TestStripedStreaming:
    def test_single_blade_limited_by_fc(self):
        result = run_stream(1)
        # One blade: 2 × 2 Gb/s FC is the ceiling.
        assert result.gbps <= 4.0 + 0.2
        assert result.gbps > 2.5

    def test_four_blades_reach_the_neighborhood_of_10gbs(self):
        """Figure 1 / §8: four blades aggregate 'in the neighborhood of
        10 Gbs' — bounded by the shared PCI-X bus (~8.5 Gb/s)."""
        result = run_stream(4)
        assert result.gbps > 7.0
        assert result.blades_used == 4

    def test_scaling_is_monotonic_until_saturation(self):
        rates = [run_stream(n).gbps for n in (1, 2, 4)]
        assert rates[0] < rates[1] < rates[2]

    def test_failed_blade_excluded(self):
        sim = Simulator()
        agg = figure1_configuration(sim, blade_count=4)
        agg.blades[0].fail()
        ev = agg.stream(gb(1))
        result = sim.run(until=ev)
        assert result.blades_used == 3

    def test_all_blades_down_fails(self):
        sim = Simulator()
        agg = figure1_configuration(sim, blade_count=1)
        agg.blades[0].fail()
        ev = agg.stream(gb(1))
        with pytest.raises(RuntimeError):
            sim.run(until=ev)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            figure1_configuration(sim, blade_count=0)
        agg = figure1_configuration(sim, blade_count=1)
        with pytest.raises(ValueError):
            agg.stream(0)


class TestScsiTarget:
    def make(self, sim):
        masking = LunMaskingTable()
        masking.register_lun("lun0")
        masking.expose("host-a", "lun0")

        def backend(lun, op, offset, nbytes):
            return sim.timeout(0.001, value=nbytes)

        return ScsiTarget(sim, masking, backend)

    def test_authorized_command_served(self):
        sim = Simulator()
        target = self.make(sim)

        def proc():
            got = yield target.submit("host-a", "lun0", "read", 0, 4096)
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == 4096
        assert target.commands_served == 1

    def test_masked_command_rejected(self):
        sim = Simulator()
        target = self.make(sim)
        caught = []

        def proc():
            try:
                yield target.submit("intruder", "lun0", "read", 0, 4096)
            except MaskingViolation:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]
        assert target.commands_rejected == 1

    def test_report_luns_masked_view(self):
        sim = Simulator()
        target = self.make(sim)
        assert target.report_luns("host-a") == ["lun0"]
        assert target.report_luns("intruder") == []

    def test_bad_op_rejected(self):
        sim = Simulator()
        target = self.make(sim)
        with pytest.raises(ValueError):
            target.submit("host-a", "lun0", "format", 0, 0)


class TestIscsi:
    def test_session_and_overhead(self):
        sim = Simulator()
        masking = LunMaskingTable()
        masking.register_lun("lun0")
        masking.expose("iqn.2002.lab:host1", "lun0")

        def backend(lun, op, offset, nbytes):
            return sim.timeout(0.0, value=nbytes)

        target = ScsiTarget(sim, masking, backend, per_op_overhead=0.0)
        portal = IscsiPortal(sim, target, network_rtt=0.001,
                             tcp_cost_per_byte=1e-9)
        session = portal.login("iqn.2002.lab:host1")

        def proc():
            t0 = sim.now
            yield portal.submit(session, "lun0", "read", 0, 10**6)
            return sim.now - t0

        p = sim.process(proc())
        sim.run()
        assert p.value >= 0.001 + 1e-9 * 10**6

    def test_unknown_session_rejected(self):
        sim = Simulator()
        masking = LunMaskingTable()
        masking.register_lun("lun0")
        target = ScsiTarget(sim, masking,
                            lambda *a: sim.timeout(0.0))
        portal = IscsiPortal(sim, target)
        caught = []

        def proc():
            try:
                yield portal.submit("forged", "lun0", "read", 0, 10)
            except PermissionError:
                caught.append(True)

        sim.process(proc())
        sim.run()
        assert caught == [True]


def make_pfs(sim):
    from repro.fs import ParallelFileSystem
    from repro.virt import Allocator, StoragePool
    alloc = Allocator([StoragePool("p", 1024 * kib(64), kib(64))])
    return ParallelFileSystem(alloc, [0, 1], stripe_unit=kib(64))


class TestNasServer:
    def test_read_splits_into_rpcs(self):
        sim = Simulator()
        pfs = make_pfs(sim)
        pfs.create("/f")
        pfs.write("/f", 0, kib(128))
        served = []

        def data_path(blade, key, op):
            served.append((blade, op))
            return sim.timeout(0.0005)

        nas = NasServer(sim, pfs, data_path, max_transfer=kib(32))

        def proc():
            yield nas.read("/f", 0, kib(128))

        sim.process(proc())
        sim.run()
        assert len(served) == 4  # 128 KiB / 32 KiB RPCs
        assert nas.rpc_count == 4

    def test_write_advances_eof_and_invalidates_attrs(self):
        sim = Simulator()
        pfs = make_pfs(sim)
        pfs.create("/f")
        nas = NasServer(sim, pfs, lambda b, k, o: sim.timeout(0.0))

        def proc():
            size0 = yield nas.getattr("/f")
            yield nas.write("/f", 0, kib(64))
            size1 = yield nas.getattr("/f")
            return (size0, size1)

        p = sim.process(proc())
        sim.run()
        assert p.value == (0, kib(64))

    def test_attr_cache_suppresses_rpcs(self):
        sim = Simulator()
        pfs = make_pfs(sim)
        pfs.create("/f")
        nas = NasServer(sim, pfs, lambda b, k, o: sim.timeout(0.0),
                        attr_cache_ttl=10.0)

        def proc():
            yield nas.getattr("/f")
            before = nas.rpc_count
            yield nas.getattr("/f")  # cached
            return nas.rpc_count - before

        p = sim.process(proc())
        sim.run()
        assert p.value == 0


class TestHttpFtp:
    def test_direct_beats_server_mediated(self):
        sim = Simulator()
        client = FairShareLink(sim, gbps(1), name="client")
        server_in = FairShareLink(sim, gbps(1), name="srv")
        client2 = FairShareLink(sim, gbps(1), name="client2")

        def storage_read(nbytes):
            return sim.timeout(nbytes / 2.5e8)  # 2 Gb/s storage feed

        direct = DirectHttpExport(sim, storage_read, client)
        mediated = ServerMediatedExport(sim, storage_read, server_in, client2)
        times = {}

        def proc():
            t0 = sim.now
            yield direct.get(mib(64))
            times["direct"] = sim.now - t0
            t0 = sim.now
            yield mediated.get(mib(64))
            times["mediated"] = sim.now - t0

        sim.process(proc())
        sim.run()
        assert times["direct"] < times["mediated"]
        assert direct.requests_served == 1
        assert mediated.requests_served == 1

    def test_ftp_whole_file(self):
        sim = Simulator()
        client = FairShareLink(sim, gbps(1), name="c")
        ftp = FtpExport(sim, lambda n: sim.timeout(n / 2.5e8), client)

        def proc():
            got = yield ftp.retr(mib(16))
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == mib(16)
        assert ftp.transfers_completed == 1
        with pytest.raises(ValueError):
            ftp.retr(0)
