"""Fast-path invariants: pooling and deferred calls must be invisible.

The kernel hot paths introduced for throughput — Timeout pooling, the
``call_in``/``call_at`` deferred-call channel, and the virtual-time
fair-share link — are performance plumbing only.  The contract here is
that none of them perturbs simulation semantics: the same seed produces a
byte-identical trace with pooling on (the default) and off (the
``Simulator(pooling=False)`` escape hatch), and deferred calls obey the
same time/FIFO ordering as event callbacks.
"""

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.sim import SimulationError
from repro.sim.units import mib


def _system_trace(pooling: bool, seed: int = 11) -> str:
    """Quickstart-sized traced workload; returns the trace JSON."""
    sim = Simulator(pooling=pooling)
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        seed=seed, observability=True))
    system.start()
    system.create("/projects/results.h5")
    system.create("/scratch/tmp")

    def client():
        yield system.write("/projects/results.h5", 0, mib(2))
        yield system.read("/projects/results.h5", 0, mib(2))
        yield system.write("/scratch/tmp", 0, mib(1))
        yield system.read("/scratch/tmp", 0, mib(1))

    sim.process(client())
    sim.run(until=30.0)
    return system.trace_json()


def test_pooling_on_off_traces_byte_identical():
    # The tentpole determinism bar: object reuse must not change any event
    # ordering, timing, or payload visible in the trace.
    assert _system_trace(pooling=True) == _system_trace(pooling=False)


def test_pooled_timeout_objects_are_reused():
    sim = Simulator()

    def proc():
        for _ in range(10):
            yield sim.timeout(0.1)

    sim.process(proc())
    sim.run()
    assert sim._free_timeouts, "fired timeouts should land in the pool"
    recycled = sim._free_timeouts[-1]
    fresh = sim.timeout(1.0)
    assert fresh is recycled  # reuse, not reallocation
    assert not fresh.processed and fresh.delay == 1.0


def test_pooling_disabled_keeps_pool_empty():
    sim = Simulator(pooling=False)

    def proc():
        for _ in range(10):
            yield sim.timeout(0.1)

    sim.process(proc())
    sim.run()
    assert sim._free_timeouts == []


def test_pooled_timeout_readable_right_after_firing():
    # A timeout's value/processed must stay readable in the same event in
    # which it fired (recycling happens only after its callbacks ran).
    sim = Simulator()
    seen = []
    t = sim.timeout(1.0, value="payload")
    t.add_callback(lambda ev: seen.append((ev.processed, ev.value)))
    sim.run()
    assert seen == [(True, "payload")]


def test_allof_values_survive_child_timeout_recycling():
    # Regression: a fired AllOf child was recycled into the pool, re-armed
    # by an unrelated sim.timeout() before the barrier completed, and its
    # value vanished from the collected dict.  Values must be snapshotted
    # at child-fire time, not re-read at collect time.
    sim = Simulator()
    t1 = sim.timeout(1.0, "x")
    t2 = sim.timeout(2.0, "y")
    barrier = sim.all_of([t1, t2])
    stray = []
    # Between the children's firings, an unrelated allocation reuses t1's
    # pooled object and resets its state.
    sim.call_at(1.2, lambda: stray.append(sim.timeout(5.0, "stray")))
    got = []
    barrier.add_callback(lambda ev: got.append(dict(ev.value)))
    sim.run()
    assert stray[0] is t1  # the child really was recycled and re-armed
    assert got == [{t1: "x", t2: "y"}]


def test_anyof_value_survives_child_timeout_recycling():
    sim = Simulator()
    t1 = sim.timeout(1.0, "first")
    race = sim.any_of([t1, sim.timeout(3.0, "late")])
    sim.call_at(1.5, lambda: sim.timeout(5.0, "stray"))
    got = []
    race.add_callback(lambda ev: got.append(list(ev.value.values())))
    sim.run()
    assert got == [["first"]]


def test_condition_values_identical_pooling_on_off():
    def collect(pooling):
        sim = Simulator(pooling=pooling)
        t1 = sim.timeout(1.0, "x")
        t2 = sim.timeout(2.0, "y")
        barrier = sim.all_of([t1, t2])
        sim.call_at(1.2, lambda: sim.timeout(5.0))
        got = []
        barrier.add_callback(lambda ev: got.append(sorted(ev.value.values())))
        sim.run()
        return got

    assert collect(True) == collect(False) == [["x", "y"]]


def test_finished_process_drops_target_reference():
    # A finished process must not pin its last awaited event — under
    # pooling that object may already be living its next life.
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    p = sim.process(proc())
    sim.run()
    assert p.triggered and p._target is None


def test_deferred_calls_interleave_fifo_with_events():
    sim = Simulator()
    order = []
    sim.call_in(1.0, lambda: order.append("a"))
    sim.timeout(1.0).add_callback(lambda ev: order.append("b"))
    sim.call_in(1.0, lambda: order.append("c"))
    sim.call_at(0.5, lambda: order.append("early"))
    sim.run()
    assert order == ["early", "a", "b", "c"]


def test_deferred_calls_advance_clock_and_count_events():
    sim = Simulator()
    at = []
    sim.call_in(2.5, lambda: at.append(sim.now))
    sim.run()
    assert at == [2.5]
    assert sim.now == 2.5
    assert sim.events_processed == 1


def test_call_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-0.001, lambda: None)


def test_call_at_past_rejected():
    sim = Simulator()
    sim.call_in(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_schedule_callback_alias():
    sim = Simulator()
    hits = []
    sim.schedule_callback(0.25, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [0.25]
