"""Unit tests for SLO burn-rate alerting (repro.obs.slo)."""

import pytest

from repro.obs import (BurnWindow, EventLog, PAGE, RatioSLO, SLO, SLOMonitor,
                       SeriesRegistry, Severity, TICKET, ThresholdSLO)
from repro.sim import Simulator


def make_monitor(interval=60.0):
    sim = Simulator()
    reg = SeriesRegistry(sim, interval=interval, capacity=720)
    log = EventLog(sim)
    return sim, reg, SLOMonitor(sim, reg, log=log)


class TestSLOBase:
    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLO("x", 0.0)
        with pytest.raises(ValueError):
            SLO("x", 1.0)
        assert SLO("x", 0.999).budget == pytest.approx(0.001)

    def test_default_windows_are_sre_pairs(self):
        slo = SLO("x", 0.999)
        assert slo.windows == (PAGE, TICKET)
        assert PAGE.factor == 14.4 and PAGE.severity == "page"
        assert TICKET.long_s == 21600.0 and TICKET.severity == "ticket"


class TestRatioSLO:
    def test_error_fraction_sums_matching_series(self):
        sim, reg, _mon = make_monitor()
        reg.series("ops_ok", tenant="a").incr(90.0)
        reg.series("ops_ok", tenant="b").incr(5.0)
        reg.series("ops_failed", tenant="a").incr(5.0)
        sim.now = 60.0  # close the buckets
        slo = RatioSLO("avail", 0.999, good="ops_ok", bad="ops_failed")
        assert slo.error_fraction(reg, 0.0, 60.0) == pytest.approx(0.05)
        pinned = RatioSLO("avail-b", 0.999, good="ops_ok",
                          bad="ops_failed", labels={"tenant": "b"})
        assert pinned.error_fraction(reg, 0.0, 60.0) == 0.0

    def test_no_data_is_none_not_zero(self):
        _sim, reg, _mon = make_monitor()
        slo = RatioSLO("avail", 0.999, good="ops_ok", bad="ops_failed")
        assert slo.error_fraction(reg, 0.0, 60.0) is None
        assert slo.burn(reg, 300.0, 60.0) is None


class TestThresholdSLO:
    def test_op_validation(self):
        with pytest.raises(ValueError):
            ThresholdSLO("x", 0.99, series="s", bound=1.0, op="ge")

    def test_violation_fraction_over_slots(self):
        sim, reg, _mon = make_monitor(interval=1.0)
        s = reg.series("lat")
        for t, v in ((0.5, 0.1), (1.5, 0.9), (2.5, 0.9), (3.5, 0.1)):
            sim.now = t
            s.record(v)
        sim.now = 10.0
        slo = ThresholdSLO("lat", 0.9, series="lat", bound=0.5, stat="p99")
        assert slo.error_fraction(reg, 0.0, 4.0) == pytest.approx(0.5)

    def test_worst_matching_series_governs(self):
        sim, reg, _mon = make_monitor(interval=1.0)
        reg.series("lat", site="a").record(0.1)
        reg.series("lat", site="b").record(0.9)
        sim.now = 2.0
        slo = ThresholdSLO("lat", 0.9, series="lat", bound=0.5)
        assert slo.error_fraction(reg, 0.0, 2.0) == 1.0

    def test_lt_op_for_floor_objectives(self):
        sim, reg, _mon = make_monitor(interval=1.0)
        reg.series("tput").record(10.0)
        sim.now = 2.0
        slo = ThresholdSLO("tput", 0.9, series="tput", bound=50.0,
                           stat="max", op="lt")
        assert slo.error_fraction(reg, 0.0, 2.0) == 1.0


class TestSLOMonitor:
    def _outage_monitor(self):
        """A level series that goes down at t=600 and stays down."""
        sim, reg, mon = make_monitor()
        down = reg.level("blades_down")
        down.record(0.0)
        sim.now = 600.0
        down.record(1.0)
        mon.add(ThresholdSLO("blades-up", 0.999, series="blades_down",
                             bound=0.0, stat="max"))
        return sim, reg, mon

    def test_duplicate_name_rejected(self):
        _sim, _reg, mon = make_monitor()
        mon.add(SLO("x", 0.999))
        with pytest.raises(ValueError):
            mon.add(SLO("x", 0.99))

    def test_fire_resolve_cycle_is_edge_triggered(self):
        sim, reg, mon = self._outage_monitor()
        sim.now = 1800.0          # 20 min into the outage
        fired = mon.evaluate()
        assert [(a.slo, a.severity) for a in fired] == [
            ("blades-up", "page"), ("blades-up", "ticket")]
        assert mon.evaluate() == []        # still firing: no re-fire
        # Repair, then let the short windows clear.
        reg.get("blades_down").record(0.0)
        sim.now = 1800.0 + 7200.0
        assert mon.evaluate() == []
        assert mon.active_alerts() == []
        assert all(a.resolved_at is not None for a in mon.alerts)

    def test_alert_log_fingerprint(self):
        sim, _reg, mon = self._outage_monitor()
        sim.now = 1800.0
        mon.evaluate()
        assert mon.alert_log() == [("blades-up", "page", 1800.0),
                                   ("blades-up", "ticket", 1800.0)]

    def test_firing_needs_both_windows(self):
        # A short blip: the 5m window burns hot but the 1h window stays
        # under the factor, so nothing pages.
        sim, reg, mon = make_monitor()
        down = reg.level("blades_down")
        down.record(0.0)
        sim.now = 35940.0
        down.record(1.0)          # down for one 60s slot out of ~10h
        sim.now = 36000.0
        down.record(0.0)
        mon.add(ThresholdSLO("blades-up", 0.9, series="blades_down",
                             bound=0.0, stat="max"))
        sim.now = 36030.0
        assert mon.evaluate() == []

    def test_alerts_land_in_event_log(self):
        sim, _reg, mon = self._outage_monitor()
        sim.now = 1800.0
        mon.evaluate()
        kinds = [(r.severity, r.kind) for r in mon.log.records()]
        assert (Severity.CRITICAL, "slo.burn_rate") in kinds
        assert (Severity.WARNING, "slo.burn_rate") in kinds

    def test_health_probe_tracks_alert_severity(self):
        sim, reg, mon = self._outage_monitor()
        assert mon.health_probe("blades-up").state.value == "up"
        sim.now = 1800.0
        mon.evaluate()
        assert mon.health_probe("blades-up").state.value == "failed"
        reg.get("blades_down").record(0.0)
        sim.now = 1800.0 + 7200.0
        mon.evaluate()
        assert mon.health_probe("blades-up").state.value == "up"

    def test_no_data_resolves_active_alerts(self):
        sim, reg, mon = self._outage_monitor()
        sim.now = 1800.0
        mon.evaluate()
        assert mon.active_alerts()
        # Far future: the retention ring no longer covers the windows, so
        # burn is None — no evidence means resolve, not latch-forever.
        sim.now = 1800.0 + 720 * 60.0 * 3
        reg.get("blades_down")._ring.clear()
        mon.evaluate()
        assert mon.active_alerts() == []

    def test_start_is_idempotent_and_periodic(self):
        sim, _reg, mon = make_monitor()
        mon.add(SLO("noop", 0.999, windows=()))
        mon.start(period=60.0)
        mon.start(period=60.0)          # second start must not double up
        sim.run(until=310.0)
        assert mon.evaluations == 5     # t=60..300, once per period

    def test_exports(self):
        sim, _reg, mon = self._outage_monitor()
        sim.now = 1800.0
        mon.evaluate()
        snap = mon.export_snapshot()
        assert snap["alerts_total"] == 2
        assert snap["alerts_active"] == 2
        assert snap["slos"][0]["name"] == "blades-up"
        prom = mon.to_prometheus()
        assert 'netstorage_slo_alerts_active{slo="blades-up"} 2' in prom
        assert "netstorage_slo_burn_rate" in prom
        status = mon.format_status()
        assert "blades-up" in status and "page,ticket" in status


class TestBurnWindowCustomization:
    def test_custom_windows_only(self):
        sim, reg, mon = make_monitor()
        fast = BurnWindow(short_s=60.0, long_s=120.0, factor=2.0,
                          severity="page")
        sim.now = 150.0            # inside both trailing windows at t=180
        reg.series("good").incr(1.0)
        reg.series("bad").incr(9.0)
        sim.now = 180.0
        mon.add(RatioSLO("avail", 0.8, good="good", bad="bad",
                         windows=(fast,)))
        fired = mon.evaluate()
        assert [a.severity for a in fired] == ["page"]
        assert fired[0].window is fast
