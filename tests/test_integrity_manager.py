"""IntegrityManager ledger semantics and RepairChain escalation."""

import pytest

from repro.faults.retry import RetryPolicy
from repro.integrity import IntegrityManager, RepairChain, RepairRequest
from repro.integrity.repair import RepairFailed
from repro.obs.telemetry import HealthState
from repro.sim import Simulator
from repro.sim.faults import TransientIOError


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def mgr(sim):
    return IntegrityManager(sim)


# -- stamping -------------------------------------------------------------


def test_stamp_and_overlap(mgr):
    mgr.stamp("disk0", 4096, 512)
    assert mgr.stamped_overlap("disk0", 4096, 512)
    assert mgr.stamped_overlap("disk0", 4400, 8)   # inside
    assert not mgr.stamped_overlap("disk0", 4608, 512)  # adjacent, after
    assert not mgr.stamped_overlap("disk1", 4096, 512)  # other domain


def test_stamped_addresses_sorted(mgr):
    for addr in (8192, 0, 4096):
        mgr.stamp("disk0", addr, 512)
    assert mgr.stamped_addresses("disk0") == [0, 4096, 8192]
    assert mgr.stamped_addresses("disk9") == []


def test_rewrite_heals_overlapping_corruption(mgr):
    mgr.stamp("disk0", 0, 1024)
    assert mgr.corrupt("disk0", 256, 512, "bitrot")
    assert mgr.verify("disk0", 0, 1024) == (256, 512, "bitrot")
    mgr.stamp("disk0", 0, 1024)  # the write overwrote the bad bytes
    assert mgr.verify("disk0", 0, 1024) is None
    assert mgr.outstanding() == 0


# -- corruption and verification ------------------------------------------


def test_corrupt_exact_duplicate_rejected(mgr):
    assert mgr.corrupt("disk0", 512, 512, "bitrot")
    assert not mgr.corrupt("disk0", 512, 512, "torn_write")
    assert mgr.injected_total == 1


def test_verify_reports_lowest_overlapping_record(mgr):
    mgr.corrupt("disk0", 2048, 512, "torn_write")
    mgr.corrupt("disk0", 1024, 512, "bitrot")
    assert mgr.verify("disk0", 0, 4096) == (1024, 512, "bitrot")
    assert mgr.verify("disk0", 2048, 8) == (2048, 512, "torn_write")
    assert mgr.verify("disk0", 3000, 512) is None


def test_cache_addresses_are_exact_probes(mgr):
    mgr.corrupt("cache", (2, ("f", 0)), 0, "bitrot")
    assert mgr.is_corrupt("cache", (2, ("f", 0)))
    assert not mgr.is_corrupt("cache", (3, ("f", 0)))
    mgr.clear("cache", (2, ("f", 0)))
    assert not mgr.is_corrupt("cache", (2, ("f", 0)))


# -- incident lifecycle ----------------------------------------------------


def test_detection_deduplicated_per_address(mgr):
    mgr.corrupt("disk0", 0, 512, "bitrot")
    assert mgr.note_detected("disk0", 0)
    assert not mgr.note_detected("disk0", 0)  # re-read of known-bad range
    assert mgr.detected_total == 1


def test_resolution_gated_on_open_incident(mgr):
    mgr.note_repaired("disk0", 0)       # never detected: no-op
    assert mgr.repaired_total == 0
    mgr.corrupt("disk0", 0, 512, "bitrot")
    mgr.note_detected("disk0", 0)
    mgr.note_repaired("disk0", 0)
    assert mgr.repaired_total == 1
    mgr.note_unrepairable("disk0", 0)   # already resolved: no-op
    assert mgr.unrepairable_total == 0


def test_fresh_incident_after_repair_counts_anew(mgr):
    mgr.corrupt("disk0", 0, 512, "bitrot")
    mgr.note_detected("disk0", 0)
    mgr.clear("disk0", 0)
    mgr.note_repaired("disk0", 0)
    assert mgr.corrupt("disk0", 0, 512, "bitrot")  # struck twice
    assert mgr.note_detected("disk0", 0)
    assert mgr.injected_total == 2 and mgr.detected_total == 2


def test_wire_event_accounting(mgr):
    mgr.wire_event("wire_corrupt", detected=True, repaired=True)
    mgr.wire_event("wire_corrupt", detected=True, repaired=False)
    mgr.wire_event("wire_corrupt", detected=False)
    s = mgr.summary()
    assert s["injected"] == 3 and s["detected"] == 2
    assert s["repaired"] == 1 and s["unrepairable"] == 1
    assert s["silent"] == 1


def test_health_states(mgr):
    assert mgr.health().state is HealthState.UP
    mgr.corrupt("disk0", 0, 512, "bitrot")
    mgr.note_detected("disk0", 0)
    assert mgr.health().state is HealthState.DEGRADED
    mgr.note_unrepairable("disk0", 0)
    assert mgr.health().state is HealthState.FAILED


# -- the escalation chain --------------------------------------------------


def _req():
    return RepairRequest(domain="disk0", address=0, length=512,
                         kind="bitrot")


def _tier_ok(sim):
    def fn(req):
        def attempt():
            return sim.timeout(0.01, value=True)
        return attempt
    return fn


def _tier_faulting(sim, calls):
    def fn(req):
        def attempt():
            calls.append(sim.now)
            ev = sim.event()
            ev.fail(TransientIOError("tier backend down"))
            return ev
        return attempt
    return fn


def test_chain_skips_unavailable_tier_without_retries(sim, mgr):
    mgr.corrupt("disk0", 0, 512, "bitrot")
    mgr.note_detected("disk0", 0)
    chain = RepairChain(sim, mgr)
    chain.add_tier("replica", lambda req: None)  # structurally absent
    chain.add_tier("parity", _tier_ok(sim))
    ev = chain.repair(_req())
    sim.run()
    assert ev.value == "parity"
    assert chain.metrics.counter("tier.replica.skipped").value == 1
    assert chain.metrics.counter("tier.replica.attempts").value == 0
    assert chain.repaired_by("parity") == 1
    assert mgr.repaired_total == 1 and mgr.outstanding() == 0


def test_chain_retries_then_escalates(sim, mgr):
    mgr.corrupt("disk0", 0, 512, "bitrot")
    mgr.note_detected("disk0", 0)
    calls = []
    chain = RepairChain(sim, mgr,
                        policy=RetryPolicy(attempts=2, base_delay=0.005))
    chain.add_tier("replica", _tier_faulting(sim, calls))
    chain.add_tier("parity", _tier_ok(sim))
    ev = chain.repair(_req())
    sim.run()
    assert ev.value == "parity"
    assert len(calls) == 2  # both retry attempts burned before escalating
    assert chain.metrics.counter("tier.replica.failed").value == 1


def test_chain_exhaustion_is_unrepairable(sim, mgr):
    mgr.corrupt("disk0", 0, 512, "bitrot")
    mgr.note_detected("disk0", 0)
    chain = RepairChain(sim, mgr)
    chain.add_tier("replica", lambda req: None)
    chain.add_tier("parity", _tier_faulting(sim, []))
    failures = []

    def proc():
        try:
            yield chain.repair(_req())
        except RepairFailed as exc:
            failures.append(exc)

    sim.process(proc())
    sim.run()
    assert len(failures) == 1
    # The last tier's fault rides along on the cause chain (through the
    # RetryExhausted wrapper).
    causes = []
    exc = failures[0].__cause__
    while exc is not None:
        causes.append(exc)
        exc = exc.__cause__
    assert any(isinstance(c, TransientIOError) for c in causes)
    assert mgr.unrepairable_total == 1
    assert mgr.outstanding() == 1  # the corruption still stands
    assert chain.health().state is HealthState.FAILED
