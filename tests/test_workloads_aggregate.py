"""Fluid aggregated workloads: conservation, determinism, fault response.

A :class:`~repro.workloads.aggregate.FluidStream` compresses 10⁵–10⁷
clients into rate flows.  The contracts tested here:

* **conservation** — fluid ops are neither created nor destroyed:
  offered = admitted + backlog, admitted = hits + transfer completions +
  failures + in-flight (to float tolerance);
* **event economy** — kernel events scale with pulses, never with the
  modeled population;
* **determinism** — the same spec + seed reproduces identical summaries
  and scenario fingerprints, on both scheduler backends, including under
  a FaultPlan site-loss campaign striking mid-stream;
* **fault response** — an open-loop population keeps offering load
  through an outage: ops fail while the site is down and complete again
  after repair.
"""

import pytest

from repro.plan import (
    MatrixSpec,
    ScenarioSpec,
    SiteSpec,
    SpecError,
    WorkloadSpec,
    plan_storage,
    run_scenario,
)
from repro.sim import Simulator
from repro.workloads import FluidStream

OPS_TOL = 1e-6


def _sink_via(sim, latency):
    """A sink completing every transfer after a fixed latency."""
    def sink(nbytes):
        return sim.timeout(latency, value=nbytes)
    return sink


def _conservation(stream):
    assert stream.ops_offered == pytest.approx(
        stream.ops_admitted + stream.backlog_ops, abs=OPS_TOL)
    assert stream.ops_admitted == pytest.approx(
        stream.ops_completed + stream.ops_failed + stream.ops_inflight,
        abs=OPS_TOL)


# ---------------------------------------------------------------------------
# FluidStream unit behavior
# ---------------------------------------------------------------------------


def test_fluid_conservation_and_rates():
    sim = Simulator()
    stream = FluidStream(
        sim, clients=100_000, ops_per_client_s=0.1, op_bytes=4096,
        read_sink=_sink_via(sim, 0.002), write_sink=_sink_via(sim, 0.005),
        read_fraction=0.7, hit_ratio=0.9, pulse_s=1.0)
    stream.start(until=50.0)
    sim.run(until=100.0)  # run past the horizon so transfers drain
    # Unthrottled: everything offered is admitted, nothing backlogs.
    assert stream.ops_offered == pytest.approx(100_000 * 0.1 * 50.0)
    assert stream.backlog_ops == 0.0
    assert stream.ops_failed == 0.0
    assert stream.ops_inflight == pytest.approx(0.0, abs=OPS_TOL)
    _conservation(stream)
    # Hit share: 70% reads × 90% hit ratio of every admitted op.
    assert stream.ops_hit == pytest.approx(stream.ops_admitted * 0.63)
    assert stream.transfer_latency.count == stream.transfers_issued
    assert stream.pulses == 50


def test_fluid_event_economy_is_population_independent():
    # The whole point: 1000× the clients, identical kernel event count.
    def events_for(clients):
        sim = Simulator()
        FluidStream(
            sim, clients=clients, ops_per_client_s=0.05, op_bytes=4096,
            read_sink=_sink_via(sim, 0.002),
            write_sink=_sink_via(sim, 0.005)).start(until=120.0)
        sim.run()
        return sim.events_processed

    assert events_for(10_000_000) == events_for(10_000)


def test_fluid_admission_token_bucket_throttles_and_drains():
    sim = Simulator()
    stream = FluidStream(
        sim, clients=1_000_000, ops_per_client_s=0.01, op_bytes=512,
        read_sink=_sink_via(sim, 0.001), write_sink=_sink_via(sim, 0.001),
        pulse_s=1.0, admit_ops_s=4_000.0, admit_burst_s=1.0)
    stream.start(until=30.0)
    sim.run(until=60.0)
    # Offered 10k ops/s against a 4k ops/s portal: backlog accumulates
    # at ~6k ops/s and the admitted volume tracks the bucket rate.
    assert stream.backlog_ops > 100_000
    assert stream.ops_admitted <= 4_000.0 * 30.0 + 4_000.0 + OPS_TOL
    assert stream.mean_queue_delay_s() > 1.0
    _conservation(stream)


def test_fluid_failed_sink_counts_ops_failed():
    sim = Simulator()

    def failing(nbytes):
        from repro.sim import Event
        from repro.sim.faults import TransientIOError
        bad = Event(sim)
        bad.fail(TransientIOError("store down"))
        return bad

    stream = FluidStream(
        sim, clients=50_000, ops_per_client_s=0.02, op_bytes=4096,
        read_sink=failing, write_sink=failing, hit_ratio=0.0)
    stream.start(until=10.0)
    sim.run(until=20.0)
    assert stream.ops_failed > 0
    assert stream.transfers_failed == stream.transfers_issued
    # Hits are zero (hit_ratio=0), so nothing completed.
    assert stream.ops_completed == 0.0
    _conservation(stream)


def test_fluid_parameter_validation():
    sim = Simulator()
    sink = _sink_via(sim, 0.001)
    base = dict(clients=10, ops_per_client_s=1.0, op_bytes=64,
                read_sink=sink, write_sink=sink)
    for bad in (dict(clients=-1), dict(op_bytes=0),
                dict(read_fraction=1.5), dict(hit_ratio=-0.1),
                dict(pulse_s=0.0), dict(admit_ops_s=0.0),
                dict(arrival_cv=-1.0)):
        with pytest.raises(ValueError):
            FluidStream(sim, **{**base, **bad})
    stream = FluidStream(sim, **base)
    stream.start(until=1.0)
    with pytest.raises(RuntimeError, match="already started"):
        stream.start(until=2.0)


# ---------------------------------------------------------------------------
# Declared-scenario integration (plan family)
# ---------------------------------------------------------------------------


def _fluid_spec(**overrides):
    faults = overrides.pop("faults", None)
    wl = WorkloadSpec(kind="fluid", clients=1_000_000,
                      ops_per_client_s=0.01, op_bytes=4096,
                      admit_ops_s=8_000.0, geo_mode="none",
                      **overrides.pop("workload", {}))
    return ScenarioSpec(name="fluid-test", seed=42, horizon_s=60.0,
                        sites=(SiteSpec("solo"),), workload=wl,
                        site_backing="aggregate", faults=faults,
                        **overrides)


def test_fluid_requires_aggregate_backing():
    spec = ScenarioSpec(workload=WorkloadSpec(kind="fluid"),
                        site_backing="system")
    with pytest.raises(SpecError, match="aggregate"):
        plan_storage(spec)


def test_single_site_aggregate_allowed_only_for_fluid():
    # Fluid unlocks the single-site wan topology...
    assert plan_storage(_fluid_spec()).kind == "wan"
    # ...while closed-loop single-site aggregate stays rejected.
    with pytest.raises(SpecError, match="single-site"):
        plan_storage(ScenarioSpec(site_backing="aggregate"))


def test_fluid_workload_spec_round_trips():
    wl = WorkloadSpec(kind="fluid", clients=2_000_000, hit_ratio=0.85,
                      pulse_s=0.5, admit_ops_s=1e4)
    assert WorkloadSpec.from_dict(wl.as_dict()) == wl
    spec = _fluid_spec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_fluid_scenario_deterministic_same_spec_and_seed():
    r1 = run_scenario(_fluid_spec())
    r2 = run_scenario(_fluid_spec())
    r3 = run_scenario(_fluid_spec(), scheduler="calendar")
    assert r1.fingerprint == r2.fingerprint == r3.fingerprint
    assert r1.ok > 400_000  # ~8k ops/s admitted over 60s, minus in-flight
    # A different seed perturbs the demand noise, hence the outcome.
    changed = run_scenario(ScenarioSpec(name="fluid-test", seed=43,
                                        horizon_s=60.0,
                                        sites=(SiteSpec("solo"),),
                                        workload=_fluid_spec().workload,
                                        site_backing="aggregate"))
    assert changed.metrics["solo.fluid.ops_offered"] != \
        r1.metrics["solo.fluid.ops_offered"]


def test_fluid_site_loss_campaign_mid_stream():
    faults = {"seed": 1, "faults": [
        {"at": 20.0, "kind": "site_loss", "target": "solo",
         "duration": 15.0}]}
    down = run_scenario(_fluid_spec(faults=faults))
    clean = run_scenario(_fluid_spec())
    # The outage window fails transfers; the open-loop stream keeps
    # pulsing and completes again after repair.
    assert down.failed > 0
    assert down.ok > 0
    assert down.ok < clean.ok
    # Deterministic under the campaign too, on both backends.
    again = run_scenario(_fluid_spec(faults=faults), scheduler="calendar")
    assert again.fingerprint == down.fingerprint


def test_fluid_fields_are_matrix_axes():
    matrix = MatrixSpec(_fluid_spec(),
                        sweep={"hit_ratio": [0.5, 0.95],
                               "admit_ops_s": [5_000.0, 50_000.0]})
    cells = matrix.expand()
    assert len(cells) == 4
    results = [run_scenario(c) for c in cells]
    # More cache hits → less backing-store read traffic.
    by_cell = {(c.workload.hit_ratio, c.workload.admit_ops_s):
               r.metrics["solo.fluid.bytes_read"]
               for c, r in zip(cells, results)}
    assert by_cell[(0.95, 50_000.0)] < by_cell[(0.5, 50_000.0)]
