"""Unit tests for RAID layout math against hand-computed examples."""

import pytest

from repro.raid import RaidLayout, RaidLevel


CHUNK = 1024


class TestGeometryValidation:
    @pytest.mark.parametrize("level,minimum", [
        (RaidLevel.RAID1, 2), (RaidLevel.RAID5, 3),
        (RaidLevel.RAID6, 4), (RaidLevel.RAID10, 4),
    ])
    def test_minimum_disks(self, level, minimum):
        with pytest.raises(ValueError):
            RaidLayout(level, minimum - 1)
        RaidLayout(level, minimum)  # exactly minimum is fine

    def test_raid10_needs_even_count(self):
        with pytest.raises(ValueError):
            RaidLayout(RaidLevel.RAID10, 5)

    def test_chunk_size_positive(self):
        with pytest.raises(ValueError):
            RaidLayout(RaidLevel.RAID0, 2, chunk_size=0)


class TestCapacity:
    def test_data_disks_per_stripe(self):
        assert RaidLayout(RaidLevel.RAID0, 4).data_disks_per_stripe == 4
        assert RaidLayout(RaidLevel.RAID1, 3).data_disks_per_stripe == 1
        assert RaidLayout(RaidLevel.RAID5, 5).data_disks_per_stripe == 4
        assert RaidLayout(RaidLevel.RAID6, 6).data_disks_per_stripe == 4
        assert RaidLayout(RaidLevel.RAID10, 8).data_disks_per_stripe == 4

    def test_redundancy(self):
        assert RaidLayout(RaidLevel.RAID0, 4).redundancy == 0
        assert RaidLayout(RaidLevel.RAID1, 3).redundancy == 2
        assert RaidLayout(RaidLevel.RAID5, 5).redundancy == 1
        assert RaidLayout(RaidLevel.RAID6, 6).redundancy == 2
        assert RaidLayout(RaidLevel.RAID10, 4).redundancy == 1

    def test_usable_capacity(self):
        layout = RaidLayout(RaidLevel.RAID5, 5, CHUNK, disk_capacity=10 * CHUNK)
        assert layout.usable_capacity() == 10 * 4 * CHUNK
        with pytest.raises(ValueError):
            RaidLayout(RaidLevel.RAID5, 5, CHUNK).usable_capacity()

    def test_space_overhead(self):
        assert RaidLayout(RaidLevel.RAID5, 5).space_overhead() == pytest.approx(0.2)
        assert RaidLayout(RaidLevel.RAID1, 2).space_overhead() == pytest.approx(0.5)
        assert RaidLayout(RaidLevel.RAID0, 8).space_overhead() == 0.0


class TestRaid0Addressing:
    def test_round_robin(self):
        layout = RaidLayout(RaidLevel.RAID0, 3, CHUNK)
        addrs = [layout.chunk_address(k) for k in range(6)]
        assert [a.disk for a in addrs] == [0, 1, 2, 0, 1, 2]
        assert [a.offset for a in addrs] == [0, 0, 0, CHUNK, CHUNK, CHUNK]
        assert all(a.parity_disks == () for a in addrs)

    def test_negative_chunk_rejected(self):
        with pytest.raises(ValueError):
            RaidLayout(RaidLevel.RAID0, 3).chunk_address(-1)


class TestRaid1Addressing:
    def test_primary_and_mirrors(self):
        layout = RaidLayout(RaidLevel.RAID1, 3, CHUNK)
        addr = layout.chunk_address(5)
        assert addr.disk == 0
        assert addr.parity_disks == (1, 2)
        assert addr.offset == 5 * CHUNK


class TestRaid10Addressing:
    def test_pairs_striped(self):
        layout = RaidLayout(RaidLevel.RAID10, 4, CHUNK)
        a0 = layout.chunk_address(0)
        a1 = layout.chunk_address(1)
        a2 = layout.chunk_address(2)
        assert (a0.disk, a0.parity_disks) == (0, (1,))
        assert (a1.disk, a1.parity_disks) == (2, (3,))
        assert (a2.disk, a2.offset) == (0, CHUNK)


class TestRaid5Addressing:
    """Left-symmetric RAID5 on 4 disks: parity rotates 3,2,1,0; data
    starts after the parity disk and wraps."""

    def test_parity_rotation(self):
        layout = RaidLayout(RaidLevel.RAID5, 4, CHUNK)
        assert [layout.parity_disks(s)[0] for s in range(5)] == [3, 2, 1, 0, 3]

    def test_stripe0_data_layout(self):
        layout = RaidLayout(RaidLevel.RAID5, 4, CHUNK)
        # Stripe 0: parity on disk 3, data on 0,1,2 in order.
        for pos, expected_disk in enumerate([0, 1, 2]):
            addr = layout.chunk_address(pos)
            assert addr.stripe == 0
            assert addr.disk == expected_disk
            assert addr.offset == 0

    def test_stripe1_wraps_after_parity(self):
        layout = RaidLayout(RaidLevel.RAID5, 4, CHUNK)
        # Stripe 1: parity on disk 2, data starts at disk 3 then wraps 0, 1.
        disks = [layout.chunk_address(3 + q).disk for q in range(3)]
        assert disks == [3, 0, 1]

    def test_stripe_members_consistent_with_addresses(self):
        layout = RaidLayout(RaidLevel.RAID5, 5, CHUNK)
        for stripe in range(7):
            data, parity = layout.stripe_members(stripe)
            base = stripe * layout.data_disks_per_stripe
            addressed = [layout.chunk_address(base + q).disk
                         for q in range(layout.data_disks_per_stripe)]
            assert data == addressed
            assert set(parity) == set(layout.parity_disks(stripe))
            assert not set(data) & set(parity)

    def test_all_disks_carry_parity_equally(self):
        layout = RaidLayout(RaidLevel.RAID5, 4, CHUNK)
        homes = [layout.parity_disks(s)[0] for s in range(4 * 10)]
        for disk in range(4):
            assert homes.count(disk) == 10


class TestRaid6Addressing:
    def test_two_distinct_parity_disks(self):
        layout = RaidLayout(RaidLevel.RAID6, 5, CHUNK)
        for stripe in range(10):
            p, q = layout.parity_disks(stripe)
            assert p != q
            assert 0 <= p < 5 and 0 <= q < 5

    def test_data_avoids_both_parities(self):
        layout = RaidLayout(RaidLevel.RAID6, 5, CHUNK)
        for stripe in range(10):
            data, parity = layout.stripe_members(stripe)
            assert len(data) == 3
            assert not set(data) & set(parity)


class TestRangeMapping:
    def test_aligned_range(self):
        layout = RaidLayout(RaidLevel.RAID0, 2, CHUNK)
        pieces = layout.chunks_for_range(0, 3 * CHUNK)
        assert pieces == [(0, 0, CHUNK), (1, 0, CHUNK), (2, 0, CHUNK)]

    def test_unaligned_range(self):
        layout = RaidLayout(RaidLevel.RAID0, 2, CHUNK)
        pieces = layout.chunks_for_range(CHUNK // 2, CHUNK)
        assert pieces == [(0, CHUNK // 2, CHUNK // 2), (1, 0, CHUNK // 2)]

    def test_range_total_preserved(self):
        layout = RaidLayout(RaidLevel.RAID5, 5, CHUNK)
        for offset, nbytes in [(0, 1), (100, 5000), (CHUNK - 1, 2),
                               (7 * CHUNK + 3, 11 * CHUNK)]:
            pieces = layout.chunks_for_range(offset, nbytes)
            assert sum(p[2] for p in pieces) == nbytes

    def test_empty_range(self):
        layout = RaidLayout(RaidLevel.RAID0, 2, CHUNK)
        assert layout.chunks_for_range(100, 0) == []

    def test_negative_rejected(self):
        layout = RaidLayout(RaidLevel.RAID0, 2, CHUNK)
        with pytest.raises(ValueError):
            layout.chunks_for_range(-1, 10)
