"""Unit tests for the disk model."""

import pytest

from repro.hardware import Disk, DiskFailedError, make_disk_farm
from repro.sim import Simulator
from repro.sim.units import mib


def make_disk(sim, **kw):
    defaults = dict(capacity=mib(100), seek_time=0.005, rpm=10_000.0,
                    transfer_rate=40e6)
    defaults.update(kw)
    return Disk(sim, **defaults)


def test_random_read_includes_positioning():
    sim = Simulator()
    disk = make_disk(sim)

    def proc():
        yield disk.read(0, 4096)
        return sim.now

    p = sim.process(proc())
    sim.run()
    expected = 0.005 + 30.0 / 10_000.0 + 4096 / 40e6
    assert p.value == pytest.approx(expected)


def test_sequential_read_skips_positioning():
    sim = Simulator()
    disk = make_disk(sim)
    times = []

    def proc():
        yield disk.read(0, mib(1))
        times.append(sim.now)
        yield disk.read(mib(1), mib(1))  # head is already there
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    first = times[0]
    second_delta = times[1] - times[0]
    transfer_only = mib(1) / 40e6
    assert first > transfer_only          # paid seek + rotation
    assert second_delta == pytest.approx(transfer_only)  # no positioning


def test_requests_queue_fifo():
    sim = Simulator()
    disk = make_disk(sim)
    completions = []

    def proc(tag):
        yield disk.read(0, 4096)
        completions.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert completions[0][0] == "a"
    assert completions[1][1] > completions[0][1]


def test_priority_lets_foreground_pass_background():
    sim = Simulator()
    disk = make_disk(sim)
    order = []

    def submit(tag, prio, delay):
        yield sim.timeout(delay)
        yield disk.read(0, mib(1), priority=prio)
        order.append(tag)

    # One op in service, then a background and a foreground op queue up.
    sim.process(submit("head", 0.0, 0.0))
    sim.process(submit("background", 5.0, 0.001))
    sim.process(submit("foreground", 0.0, 0.002))
    sim.run()
    assert order == ["head", "foreground", "background"]


def test_out_of_range_io_rejected():
    sim = Simulator()
    disk = make_disk(sim, capacity=1000)
    with pytest.raises(ValueError):
        disk.read(900, 200)
    with pytest.raises(ValueError):
        disk.write(-1, 10)


def test_failed_disk_fails_io():
    sim = Simulator()
    disk = make_disk(sim)
    disk.fail()
    caught = []

    def proc():
        try:
            yield disk.read(0, 4096)
        except DiskFailedError:
            caught.append(True)

    sim.process(proc())
    sim.run()
    assert caught == [True]


def test_failure_mid_io_fails_inflight_request():
    sim = Simulator()
    disk = make_disk(sim)
    caught = []

    def reader():
        try:
            yield disk.read(0, mib(10))  # long transfer
        except DiskFailedError:
            caught.append(sim.now)

    def killer():
        yield sim.timeout(0.01)
        disk.fail()

    sim.process(reader())
    sim.process(killer())
    sim.run()
    assert len(caught) == 1


def test_repair_restores_service():
    sim = Simulator()
    disk = make_disk(sim)
    disk.fail()
    disk.repair()

    def proc():
        got = yield disk.read(0, 4096)
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == 4096


def test_utilization_and_counters():
    sim = Simulator()
    disk = make_disk(sim)

    def proc():
        yield disk.read(0, mib(4))
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert disk.ops == 1
    assert disk.bytes_moved == mib(4)
    assert 0.0 < disk.mean_utilization() < 1.0


def test_queue_depth_reflects_waiting():
    sim = Simulator()
    disk = make_disk(sim)
    depths = []

    def submit():
        for _ in range(3):
            disk.read(0, mib(1))
        yield sim.timeout(0.0001)
        depths.append(disk.queue_depth)

    sim.process(submit())
    sim.run()
    assert depths[0] == 3


def test_make_disk_farm():
    sim = Simulator()
    farm = make_disk_farm(sim, 4, mib(10), name="pool")
    assert len(farm) == 4
    assert farm[2].name == "pool.d2"
    with pytest.raises(ValueError):
        make_disk_farm(sim, 0, mib(10))


def test_bad_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, capacity=0)
    with pytest.raises(ValueError):
        Disk(sim, capacity=100, transfer_rate=0)
