"""Unit + property tests for DMSDs, thick volumes, and snapshots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virt import (
    MAX_DMSD_BYTES,
    AllocationError,
    Allocator,
    DemandMappedDevice,
    DmsdError,
    StoragePool,
    VirtualVolume,
    VolumeError,
    take_snapshot,
)

PAGE = 1024


def make_allocator(pages=64):
    return Allocator([StoragePool("p", pages * PAGE, PAGE)])


class TestThickVolume:
    def test_fully_provisioned_at_creation(self):
        alloc = make_allocator()
        vol = VirtualVolume("v", 10 * PAGE, alloc)
        assert vol.allocated_bytes == 10 * PAGE
        assert alloc.used_bytes == 10 * PAGE
        assert vol.resize_operations == 0

    def test_rounds_up_to_page(self):
        alloc = make_allocator()
        vol = VirtualVolume("v", PAGE + 1, alloc)
        assert vol.size_bytes == 2 * PAGE

    def test_translate(self):
        alloc = make_allocator()
        vol = VirtualVolume("v", 4 * PAGE, alloc)
        ref, intra = vol.translate(PAGE + 7)
        assert intra == 7
        with pytest.raises(VolumeError):
            vol.translate(4 * PAGE)

    def test_resize_counts_admin_ops(self):
        alloc = make_allocator()
        vol = VirtualVolume("v", 2 * PAGE, alloc)
        vol.resize(6 * PAGE)
        vol.resize(3 * PAGE)
        assert vol.resize_operations == 2
        assert vol.size_bytes == 3 * PAGE
        assert alloc.used_bytes == 3 * PAGE

    def test_delete_frees_everything(self):
        alloc = make_allocator()
        vol = VirtualVolume("v", 5 * PAGE, alloc)
        vol.delete()
        assert alloc.used_bytes == 0
        with pytest.raises(VolumeError):
            vol.translate(0)

    def test_creation_fails_when_pool_too_small(self):
        alloc = make_allocator(pages=4)
        with pytest.raises(AllocationError):
            VirtualVolume("v", 10 * PAGE, alloc)

    def test_pages_for_range(self):
        alloc = make_allocator()
        vol = VirtualVolume("v", 4 * PAGE, alloc)
        pieces = vol.pages_for_range(PAGE // 2, PAGE)
        assert len(pieces) == 2
        assert sum(p[2] for p in pieces) == PAGE


class TestDmsd:
    def test_huge_virtual_size_consumes_nothing(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", int(1e18), alloc)  # an exabyte
        assert dmsd.mapped_bytes == 0
        assert alloc.used_bytes == 0

    def test_size_ceiling_is_1_5_yottabytes(self):
        alloc = make_allocator()
        DemandMappedDevice("ok", MAX_DMSD_BYTES, alloc)
        with pytest.raises(ValueError):
            DemandMappedDevice("big", MAX_DMSD_BYTES + 1, alloc)
        with pytest.raises(ValueError):
            DemandMappedDevice("zero", 0, alloc)

    def test_write_maps_on_demand(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 10)
        assert dmsd.mapped_pages == 1
        dmsd.write(5 * PAGE, 2 * PAGE)
        assert dmsd.mapped_pages == 3
        assert alloc.used_bytes == 3 * PAGE

    def test_rewrite_does_not_reallocate(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        first = dmsd.write(0, 10)
        second = dmsd.write(0, 10)
        assert first == second
        assert dmsd.pages_allocated_total == 1

    def test_read_of_unwritten_is_zero_page(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        assert dmsd.read(0, PAGE) == [None]
        dmsd.write(0, 1)
        assert dmsd.read(0, PAGE)[0] is not None

    def test_unmap_frees_full_pages_only(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 3 * PAGE)
        # Range covers page 1 fully, pages 0 and 2 partially.
        freed = dmsd.unmap(PAGE // 2, 2 * PAGE)
        assert freed == 1
        assert dmsd.mapped_pages == 2
        assert alloc.used_bytes == 2 * PAGE

    def test_out_of_range_rejected(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 10 * PAGE, alloc)
        with pytest.raises(DmsdError):
            dmsd.write(10 * PAGE, 1)
        with pytest.raises(DmsdError):
            dmsd.read(-1, 5)

    def test_delete_returns_capacity(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 5 * PAGE)
        dmsd.delete()
        assert alloc.used_bytes == 0
        with pytest.raises(DmsdError):
            dmsd.write(0, 1)

    def test_utilization(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 10 * PAGE, alloc)
        dmsd.write(0, 5 * PAGE)
        assert dmsd.utilization() == pytest.approx(0.5)

    def test_exhaustion_raises(self):
        alloc = make_allocator(pages=2)
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 2 * PAGE)
        with pytest.raises(AllocationError):
            dmsd.write(50 * PAGE, 1)


class TestSnapshot:
    def test_snapshot_shares_pages(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 4 * PAGE)
        snap = take_snapshot(dmsd, "s1")
        # No extra space consumed at snapshot time.
        assert alloc.used_bytes == 4 * PAGE
        assert snap.mapped_bytes == 4 * PAGE

    def test_write_after_snapshot_cows(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 2 * PAGE)
        snap = take_snapshot(dmsd, "s1")
        before = dmsd.read(0, PAGE)[0]
        dmsd.write(0, PAGE)
        after = dmsd.read(0, PAGE)[0]
        assert before != after            # live device moved to a new page
        assert snap.read(0, PAGE)[0] == before  # snapshot still sees old
        assert dmsd.cow_copies == 1
        assert alloc.used_bytes == 3 * PAGE

    def test_snapshot_delete_releases_shares(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 2 * PAGE)
        snap = take_snapshot(dmsd, "s1")
        dmsd.write(0, PAGE)  # COW → 3 pages
        snap.delete()
        # Old page 0 (held only by snapshot) is freed.
        assert alloc.used_bytes == 2 * PAGE
        with pytest.raises(DmsdError):
            snap.read(0, 1)
        with pytest.raises(DmsdError):
            snap.delete()

    def test_restore_rolls_back(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, PAGE)
        original = dmsd.read(0, PAGE)[0]
        snap = take_snapshot(dmsd, "s1")
        dmsd.write(0, PAGE)  # diverge
        dmsd.write(5 * PAGE, PAGE)  # new data not in snapshot
        snap.restore_into(dmsd)
        assert dmsd.read(0, PAGE)[0] == original
        assert dmsd.read(5 * PAGE, PAGE) == [None]

    def test_unique_bytes_tracks_divergence(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, 2 * PAGE)
        snap = take_snapshot(dmsd, "s1")
        assert snap.unique_bytes() == 0
        dmsd.write(0, PAGE)
        assert snap.unique_bytes() == PAGE

    def test_multiple_snapshots(self):
        alloc = make_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc)
        dmsd.write(0, PAGE)
        s1 = take_snapshot(dmsd, "s1")
        dmsd.write(0, PAGE)
        s2 = take_snapshot(dmsd, "s2")
        dmsd.write(0, PAGE)
        views = {s1.read(0, 1)[0], s2.read(0, 1)[0], dmsd.read(0, 1)[0]}
        assert len(views) == 3  # three distinct page versions


@settings(max_examples=40)
@given(st.lists(st.tuples(st.sampled_from(["write", "unmap", "snap", "delsnap"]),
                          st.integers(0, 19)), max_size=60))
def test_property_space_conservation_under_snapshot_churn(ops):
    """Pool usage always equals the union of pages referenced by the live
    device and all snapshots; nothing leaks, nothing double-frees."""
    alloc = make_allocator(pages=256)
    dmsd = DemandMappedDevice("d", 20 * PAGE, alloc)
    snaps = []
    for op, page in ops:
        if op == "write":
            dmsd.write(page * PAGE, PAGE)
        elif op == "unmap":
            dmsd.unmap(page * PAGE, PAGE)
        elif op == "snap":
            snaps.append(take_snapshot(dmsd, f"s{len(snaps)}"))
        elif op == "delsnap" and snaps:
            snaps.pop().delete()
        referenced = set(dmsd._table.values())
        for s in snaps:
            referenced |= set(s._table.values())
        assert alloc.used_bytes == len(referenced) * PAGE
    for s in snaps:
        s.delete()
    dmsd.delete()
    assert alloc.used_bytes == 0
