"""Unit tests for metric collectors, units, and RNG streams."""

import numpy as np
import pytest

from repro.sim import Counter, Histogram, MetricSet, RateMeter, RngStreams, Simulator, Tally, TimeWeighted
from repro.sim import units


class TestTally:
    def test_mean_and_variance(self):
        t = Tally()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            t.record(v)
        assert t.mean() == pytest.approx(5.0)
        assert t.std() == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))
        assert t.min == 2.0
        assert t.max == 9.0
        assert t.count == 8

    def test_empty_tally_safe(self):
        t = Tally()
        assert t.mean() == 0.0
        assert t.variance() == 0.0
        assert t.percentile(50) == 0.0

    def test_percentile(self):
        t = Tally()
        for v in range(101):
            t.record(float(v))
        assert t.percentile(50) == pytest.approx(50.0)
        assert t.percentile(99) == pytest.approx(99.0)

    def test_no_samples_mode_rejects_percentile(self):
        t = Tally(keep_samples=False)
        t.record(1.0)
        with pytest.raises(RuntimeError):
            t.percentile(50)
        assert t.mean() == 1.0


class TestTimeWeighted:
    def test_time_weighted_mean(self):
        sim = Simulator()
        tw = TimeWeighted(sim, initial=0.0)

        def proc():
            tw.record(10.0)
            yield sim.timeout(2.0)
            tw.record(0.0)
            yield sim.timeout(2.0)

        sim.process(proc())
        sim.run()
        assert tw.mean() == pytest.approx(5.0)
        assert tw.max == 10.0

    def test_add_adjusts_level(self):
        sim = Simulator()
        tw = TimeWeighted(sim)
        tw.add(3.0)
        tw.add(-1.0)
        assert tw.level == pytest.approx(2.0)

    def test_mean_with_no_elapsed_time(self):
        sim = Simulator()
        tw = TimeWeighted(sim, initial=7.0)
        assert tw.mean() == 7.0

    def test_max_tracks_through_add_decrease_then_rise(self):
        # max must follow the level through add() even when it dips and
        # then climbs past the old peak (queue-depth style usage).
        sim = Simulator()
        tw = TimeWeighted(sim)
        tw.add(5.0)
        assert tw.max == 5.0
        tw.add(-4.0)          # dip: peak must be retained
        assert tw.max == 5.0
        tw.add(2.0)           # rise below old peak: unchanged
        assert tw.max == 5.0
        tw.add(4.0)           # rise past the old peak: new max
        assert tw.level == pytest.approx(7.0)
        assert tw.max == 7.0

    def test_max_with_negative_start(self):
        sim = Simulator()
        tw = TimeWeighted(sim, initial=-2.0)
        tw.add(-1.0)
        assert tw.max == -2.0  # initial level is the peak so far
        tw.add(2.5)
        assert tw.max == pytest.approx(-0.5)


def test_counter():
    c = Counter()
    c.incr()
    c.incr(5)
    assert c.value == 6


def test_rate_meter():
    sim = Simulator()
    meter = RateMeter(sim)

    def proc():
        meter.record(100.0)
        yield sim.timeout(4.0)
        meter.record(100.0)

    sim.process(proc())
    sim.run()
    assert meter.rate() == pytest.approx(50.0)
    assert meter.total == 200.0


def test_rate_meter_zero_time():
    sim = Simulator()
    meter = RateMeter(sim)
    meter.record(10.0)
    assert meter.rate() == 0.0


class TestHistogram:
    def test_binning(self):
        h = Histogram([1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0, 5.0):
            h.record(v)
        d = h.as_dict()
        assert d["<1"] == 1
        assert d["[1,10)"] == 2
        assert d["[10,100)"] == 1
        assert d[">=100"] == 1

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram([3.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([1.0])


def test_metric_set_snapshot():
    sim = Simulator()
    m = MetricSet(sim)
    m.tally("lat").record(0.5)
    m.counter("hits").incr(3)
    m.rate("tput")  # create at t=0 so elapsed time is measured from run start

    def proc():
        m.level("depth").record(4.0)
        yield sim.timeout(1.0)
        m.rate("tput").record(800.0)

    sim.process(proc())
    sim.run()
    snap = m.snapshot()
    assert snap["lat.mean"] == 0.5
    assert snap["lat.count"] == 1
    assert snap["hits"] == 3
    assert snap["depth.twa"] == pytest.approx(4.0)
    assert snap["tput.bytes_per_s"] == pytest.approx(800.0)


def test_metric_set_returns_same_collector():
    sim = Simulator()
    m = MetricSet(sim)
    assert m.tally("x") is m.tally("x")
    assert m.counter("y") is m.counter("y")


def test_metric_set_histogram_registry():
    sim = Simulator()
    m = MetricSet(sim)
    h = m.histogram("lat", edges=[0.001, 0.01, 0.1])
    assert m.histogram("lat") is h  # edges only needed on first use
    for v in (0.0005, 0.005, 0.05, 0.5):
        h.record(v)
    snap = m.snapshot()
    assert snap["lat.bin<0.001"] == 1.0
    assert snap["lat.bin[0.001,0.01)"] == 1.0
    assert snap["lat.bin[0.01,0.1)"] == 1.0
    assert snap["lat.bin>=0.1"] == 1.0
    with pytest.raises(ValueError):
        m.histogram("unseen")  # no edges on first use


def test_snapshot_includes_spread_and_percentiles():
    sim = Simulator()
    m = MetricSet(sim)
    t = m.tally("lat")
    for v in range(1, 101):
        t.record(float(v))
    m.level("depth").record(3.0)
    m.level("depth").record(1.0)
    snap = m.snapshot()
    assert snap["lat.min"] == 1.0
    assert snap["lat.max"] == 100.0
    assert snap["lat.std"] == pytest.approx(t.std())
    assert snap["lat.p50"] == pytest.approx(50.5)
    assert snap["lat.p95"] == pytest.approx(95.05)
    assert snap["lat.p99"] == pytest.approx(99.01)
    assert snap["depth.peak"] == 3.0
    # Empty tallies stay minimal: no min/max noise before data arrives.
    m.tally("unused")
    snap2 = m.snapshot()
    assert "unused.min" not in snap2
    assert snap2["unused.count"] == 0


class TestMetricSetEdgeCases:
    """Histogram/snapshot boundary behavior the reports depend on."""

    def test_empty_set_snapshot_is_empty(self):
        sim = Simulator()
        m = MetricSet(sim)
        assert m.snapshot() == {}

    def test_empty_histogram_bins_all_zero(self):
        sim = Simulator()
        m = MetricSet(sim)
        m.histogram("lat", edges=[0.001, 0.1])
        snap = m.snapshot()
        assert snap["lat.bin<0.001"] == 0.0
        assert snap["lat.bin[0.001,0.1)"] == 0.0
        assert snap["lat.bin>=0.1"] == 0.0

    def test_value_on_edge_falls_in_upper_bin(self):
        # searchsorted side="right": an observation exactly equal to an
        # edge belongs to the half-open interval that starts there.
        h = Histogram([1.0, 10.0])
        h.record(1.0)
        h.record(10.0)
        d = h.as_dict()
        assert d["<1"] == 0
        assert d["[1,10)"] == 1
        assert d[">=10"] == 1

    def test_single_sample_tally_snapshot(self):
        # One observation: percentiles collapse onto the sample, std is 0
        # (ddof=1 with n=1 would divide by zero; the Tally reports 0).
        sim = Simulator()
        m = MetricSet(sim)
        m.tally("lat").record(0.25)
        snap = m.snapshot()
        assert snap["lat.mean"] == 0.25
        assert snap["lat.count"] == 1
        assert snap["lat.min"] == snap["lat.max"] == 0.25
        assert snap["lat.std"] == 0.0
        assert snap["lat.p50"] == snap["lat.p95"] == snap["lat.p99"] == 0.25

    def test_two_sample_quantile_interpolation(self):
        # numpy's default linear interpolation between the two order
        # statistics: p50 of {0, 1} is the midpoint, p99 sits 99 % of the
        # way up — the window-boundary behavior the latency reports show.
        sim = Simulator()
        m = MetricSet(sim)
        t = m.tally("lat")
        t.record(0.0)
        t.record(1.0)
        snap = m.snapshot()
        assert snap["lat.p50"] == pytest.approx(0.5)
        assert snap["lat.p95"] == pytest.approx(0.95)
        assert snap["lat.p99"] == pytest.approx(0.99)

    def test_extreme_quantiles_clamp_to_samples(self):
        t = Tally()
        for v in (3.0, 1.0, 2.0):
            t.record(v)
        assert t.percentile(0.0) == 1.0
        assert t.percentile(100.0) == 3.0

    def test_identical_samples_have_flat_quantiles(self):
        t = Tally()
        for _ in range(10):
            t.record(7.0)
        assert t.percentiles([50.0, 95.0, 99.0]) == [7.0, 7.0, 7.0]
        assert t.std() == 0.0


class TestUnits:
    def test_sizes(self):
        assert units.kib(1) == 1024
        assert units.mib(2) == 2 * 1024**2
        assert units.gib(1) == 1024**3
        assert units.gb(1) == 10**9
        assert units.tb(0.5) == 5 * 10**11

    def test_rates_round_trip(self):
        assert units.gbps(2) == pytest.approx(2.5e8)
        assert units.to_gbps(units.gbps(10)) == pytest.approx(10.0)
        assert units.to_mb_per_s(units.mb_per_s(123)) == pytest.approx(123.0)

    def test_time(self):
        assert units.ms(5) == pytest.approx(0.005)
        assert units.us(2) == pytest.approx(2e-6)
        assert units.hours(1) == 3600.0
        assert units.days(2) == 172800.0

    def test_wan_latency_scales_with_distance(self):
        near = units.wan_latency(10)
        far = units.wan_latency(4000)
        assert far > near
        # ~20ms one-way for 4000 km of fibre plus equipment delay
        assert far == pytest.approx(0.0202, rel=0.01)

    def test_wan_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            units.wan_latency(-1)

    def test_formatting(self):
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(units.gib(2)) == "2.00 GiB"
        assert units.fmt_rate(units.gbps(10)).startswith("10.00 Gb/s")
        assert "Mb/s" in units.fmt_rate(units.mbps(5))


class TestRngStreams:
    def test_same_name_same_sequence(self):
        a = RngStreams(7).fresh("disk")
        b = RngStreams(7).fresh("disk")
        assert np.allclose(a.random(10), b.random(10))

    def test_different_names_differ(self):
        s = RngStreams(7)
        a = s.fresh("disk")
        b = s.fresh("net")
        assert not np.allclose(a.random(10), b.random(10))

    def test_different_seeds_differ(self):
        a = RngStreams(1).fresh("disk")
        b = RngStreams(2).fresh("disk")
        assert not np.allclose(a.random(10), b.random(10))

    def test_stream_is_stateful_and_cached(self):
        s = RngStreams(3)
        g1 = s.stream("w")
        first = g1.random()
        g2 = s.stream("w")
        assert g1 is g2
        assert g2.random() != first  # advanced, not reset

    def test_spawn_indexed_children(self):
        s = RngStreams(5)
        c0 = s.spawn("client", 0)
        c1 = s.spawn("client", 1)
        assert not np.allclose(c0.random(5), c1.random(5))

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("abc")  # type: ignore[arg-type]
