"""Unit tests for the coherence directory protocol."""


from repro.cache import Directory


def test_first_shared_acquire_has_no_actions():
    d = Directory()
    actions = d.acquire_shared(0, "k")
    assert actions.fetch_from is None
    assert actions.invalidate == ()
    assert d.holders("k") == {0}


def test_second_reader_fetches_from_first():
    d = Directory()
    d.acquire_shared(0, "k")
    actions = d.acquire_shared(1, "k")
    assert actions.fetch_from == 0
    assert d.holders("k") == {0, 1}
    assert d.remote_fetches == 1


def test_read_of_dirty_block_fetches_from_owner():
    d = Directory()
    d.acquire_exclusive(2, "k")
    actions = d.acquire_shared(0, "k")
    assert actions.fetch_from == 2
    assert actions.writeback_from == 2
    assert d.entry("k").dirty  # still dirty until destaged


def test_exclusive_invalidates_all_sharers():
    d = Directory()
    for blade in (0, 1, 2):
        d.acquire_shared(blade, "k")
    actions = d.acquire_exclusive(3, "k")
    assert set(actions.invalidate) == {0, 1, 2}
    assert d.invalidations_sent == 3
    entry = d.entry("k")
    assert entry.owner == 3
    assert entry.sharers == set()
    assert entry.dirty


def test_exclusive_over_dirty_owner_transfers():
    d = Directory()
    d.acquire_exclusive(0, "k")
    actions = d.acquire_exclusive(1, "k")
    assert actions.fetch_from == 0
    assert 0 in actions.invalidate
    assert d.entry("k").owner == 1


def test_exclusive_by_current_owner_is_cheap():
    d = Directory()
    d.acquire_exclusive(0, "k")
    actions = d.acquire_exclusive(0, "k")
    assert actions.invalidate == ()
    assert actions.fetch_from is None


def test_replicas_registered_and_released_on_destage():
    d = Directory()
    d.acquire_exclusive(0, "k")
    d.register_replicas("k", {1, 2})
    assert d.holders("k") == {0, 1, 2}
    released = d.destaged("k")
    assert released == {0, 1, 2}
    entry = d.entry("k")
    assert not entry.dirty
    assert entry.owner is None
    assert entry.sharers == {0, 1, 2}


def test_destage_unknown_key():
    d = Directory()
    assert d.destaged("ghost") == set()


def test_eviction_removes_holder_and_garbage_collects():
    d = Directory()
    d.acquire_shared(0, "k")
    d.acquire_shared(1, "k")
    d.evicted(0, "k")
    assert d.holders("k") == {1}
    d.evicted(1, "k")
    assert d.entry("k") is None
    assert len(d) == 0


def test_blade_failure_salvages_replicated_dirty_blocks():
    d = Directory()
    d.acquire_exclusive(0, "k")
    d.register_replicas("k", {1})
    salvaged, lost = d.blade_failed(0)
    assert salvaged == ["k"]
    assert lost == []
    entry = d.entry("k")
    assert entry.owner == 1  # replica promoted
    assert entry.dirty


def test_blade_failure_loses_unreplicated_dirty_blocks():
    d = Directory()
    d.acquire_exclusive(0, "k")  # no replicas
    salvaged, lost = d.blade_failed(0)
    assert salvaged == []
    assert lost == ["k"]


def test_blade_failure_with_two_replicas_survives_two_deaths():
    d = Directory()
    d.acquire_exclusive(0, "k")
    d.register_replicas("k", {1, 2})
    _, lost0 = d.blade_failed(0)
    _, lost1 = d.blade_failed(1)
    assert lost0 == lost1 == []
    assert d.entry("k").owner == 2
    _, lost2 = d.blade_failed(2)
    assert lost2 == ["k"]


def test_blade_failure_cleans_clean_copies_silently():
    d = Directory()
    d.acquire_shared(0, "k")
    salvaged, lost = d.blade_failed(0)
    assert salvaged == [] and lost == []
    assert d.entry("k") is None
