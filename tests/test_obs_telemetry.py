"""Management plane: probes, aggregation, and export formats."""

import json

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.obs import ComponentHealth, HealthState, ManagementPlane
from repro.sim.units import mib


def up(component, **metrics):
    return lambda: ComponentHealth(component, HealthState.UP, dict(metrics))


def test_register_poll_and_components():
    mgmt = ManagementPlane(Simulator())
    mgmt.register("blade0", up("blade0", cpu=0.2))
    mgmt.register("blade1", up("blade1", cpu=0.4))
    assert mgmt.components() == ["blade0", "blade1"]
    snap = mgmt.poll()
    assert snap["blade0"].metrics["cpu"] == 0.2
    assert mgmt.polls == 1
    mgmt.unregister("blade0")
    assert mgmt.components() == ["blade1"]


def test_raising_probe_reports_unknown_not_poll_failure():
    mgmt = ManagementPlane(Simulator())
    mgmt.register("good", up("good"))

    def bad():
        raise RuntimeError("component is on fire")

    mgmt.register("bad", bad)
    snap = mgmt.poll()  # must not raise
    assert snap["good"].state is HealthState.UP
    assert snap["bad"].state is HealthState.UNKNOWN
    assert "on fire" in snap["bad"].detail


def test_overall_is_worst_of():
    mgmt = ManagementPlane(Simulator())
    assert mgmt.overall() is HealthState.UP  # empty plane
    mgmt.register("a", up("a"))
    assert mgmt.overall() is HealthState.UP
    mgmt.register("b", lambda: ComponentHealth("b", HealthState.DEGRADED))
    assert mgmt.overall() is HealthState.DEGRADED
    mgmt.register("c", lambda: ComponentHealth("c", HealthState.FAILED))
    assert mgmt.overall() is HealthState.FAILED
    # FAILED outranks UNKNOWN in the aggregate.
    mgmt.register("d", lambda: (_ for _ in ()).throw(RuntimeError("x")))
    assert mgmt.overall() is HealthState.FAILED


def test_prometheus_text_exposition():
    mgmt = ManagementPlane(Simulator())
    mgmt.register("blade0", up("blade0", cpu_utilization=0.25, ios=12))
    mgmt.register("blade1",
                  lambda: ComponentHealth("blade1", HealthState.FAILED))
    text = mgmt.to_prometheus()
    assert "# TYPE netstorage_health gauge" in text
    assert 'netstorage_health{component="blade0"} 1' in text
    assert 'netstorage_health{component="blade1"} 0' in text
    assert 'netstorage_cpu_utilization{component="blade0"} 0.25' in text
    assert 'netstorage_ios{component="blade0"} 12' in text
    assert text.endswith("\n")


def test_json_export_is_deterministic_and_parses():
    sim = Simulator()
    mgmt = ManagementPlane(sim, name="oob")
    mgmt.register("cache.pool", up("cache.pool", hit_ratio=0.75))
    assert mgmt.to_json() == mgmt.to_json()
    doc = json.loads(mgmt.to_json())
    assert doc["plane"] == "oob"
    assert doc["overall"] == "up"
    assert doc["components"][0] == {
        "component": "cache.pool", "state": "up",
        "metrics": {"hit_ratio": 0.75}, "detail": ""}


def test_status_report_is_single_system_image():
    mgmt = ManagementPlane(Simulator())
    mgmt.register("blade0", up("blade0", cpu_utilization=0.5))
    mgmt.register("geo.replicator",
                  lambda: ComponentHealth("geo.replicator",
                                          HealthState.DEGRADED,
                                          detail="lagging"))
    report = mgmt.status_report()
    assert "system degraded" in report
    assert "blade0" in report and "geo.replicator" in report
    assert "lagging" in report
    assert "cpu_utilization=0.5" in report


def _booted_system(**cfg):
    sim = Simulator()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(512),
        observability=True, **cfg))
    system.start()
    return sim, system


class TestSystemTelemetry:
    def test_per_blade_health_in_system_snapshot(self):
        sim, system = _booted_system()
        snap = system.obs.mgmt.poll()
        blades = [c for c in snap if c.startswith("blade")]
        assert len(blades) == 4
        assert all(snap[b].state is HealthState.UP for b in blades)
        assert {"cluster", "cache.pool", "raid.pool",
                "sim.kernel"} <= set(snap)
        assert system.obs.mgmt.overall(snap) is HealthState.UP

    def test_blade_failure_degrades_the_image(self):
        sim, system = _booted_system()
        blade = next(iter(system.cluster.blades.values()))
        blade.fail()
        snap = system.obs.mgmt.poll()
        assert snap[blade.name].state is HealthState.FAILED
        assert snap["cluster"].state is not HealthState.UP
        assert system.obs.mgmt.overall(snap) is HealthState.FAILED
        # The failure also landed in the event log.
        assert system.obs.log.records(component=blade.name,
                                      kind="blade_failed")

    def test_rebuild_probe_reports_progress_then_eta_zero(self):
        sim, system = _booted_system()
        job = system.fail_disk_and_rebuild(0)
        probe_name = "rebuild.disk0"
        assert probe_name in system.obs.mgmt.components()
        mid = system.obs.mgmt.poll()[probe_name]
        assert mid.state is HealthState.DEGRADED
        sim.run(until=600.0)
        assert job.done
        after = system.obs.mgmt.poll()[probe_name]
        assert after.state is HealthState.UP
        assert after.metrics["eta_s"] == 0.0
        assert after.metrics["progress"] == 1.0

    def test_telemetry_report_text(self):
        sim, system = _booted_system()
        report = system.telemetry_report()
        assert "system up" in report
        assert "blade0" in report
