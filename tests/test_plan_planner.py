"""plan_storage: validation paths, layout arithmetic, plan round-trips."""

import json

import pytest

from repro.plan import (ClusterSpec, LinkSpec, Plan, ScenarioSpec, SiteSpec,
                        SpecError, plan_cache_bench, plan_storage)
from repro.plan.spec import CacheBenchSpec
from repro.sim.units import mib

SMALL = ClusterSpec(blade_count=2, disk_count=8, disk_capacity=mib(64))


def small_spec(**kw):
    kw.setdefault("cluster", SMALL)
    return ScenarioSpec(**kw)


# -- validation errors name the offending axis ---------------------------------


def err_path(spec):
    with pytest.raises(SpecError) as exc:
        plan_storage(spec)
    return exc.value.path


def test_scenario_level_validation_paths():
    assert err_path(small_spec(name="")) == "name"
    assert err_path(small_spec(horizon_s=0)) == "horizon_s"
    assert err_path(small_spec(site_backing="raid")) == "site_backing"
    assert err_path(small_spec(sites=())) == "sites"
    assert err_path(small_spec(
        sites=(SiteSpec("a"), SiteSpec("a")))) == "sites"
    assert err_path(small_spec(scrub_passes=-1)) == "scrub_passes"
    assert err_path(small_spec(scrub_passes=1)) == "scrub_passes"  # no integrity
    assert err_path(small_spec(
        sites=(SiteSpec("a"), SiteSpec("b")), site_backing="aggregate",
        integrity=True)) == "integrity"
    assert err_path(small_spec(site_backing="aggregate")) == "site_backing"


def test_every_system_config_error_surfaces_with_spec_path():
    """Each SystemConfig.__post_init__ ValueError comes back as a
    SpecError whose path names the site and, when the message leads with
    a field name, the field itself."""
    cases = [
        (ClusterSpec(blade_count=0), "blade_count"),
        (ClusterSpec(replication=0), "replication"),
        (ClusterSpec(blade_count=2, replication=3), "replication"),
        (ClusterSpec(disk_count=3), "disk_count"),
        (ClusterSpec(block_size=0), "block_size"),
        (ClusterSpec(scrub_rate=0.0), "scrub_rate"),
    ]
    for bad, fieldname in cases:
        with pytest.raises(SpecError) as exc:
            plan_storage(ScenarioSpec(cluster=bad))
        assert exc.value.path == f"sites[0].{fieldname}", fieldname


def test_per_site_config_error_names_the_site_index():
    spec = ScenarioSpec(
        cluster=SMALL,
        sites=(SiteSpec("a"),
               SiteSpec("b", (0.0, 100.0), ClusterSpec(replication=5))))
    with pytest.raises(SpecError) as exc:
        plan_storage(spec)
    assert exc.value.path == "sites[1].replication"


def test_link_validation_paths():
    two = (SiteSpec("a"), SiteSpec("b", (0.0, 100.0)))
    assert err_path(small_spec(
        sites=two, links=(LinkSpec("a", "nowhere"),))) == "links[0].b"
    assert err_path(small_spec(
        links=(LinkSpec("site0", "ghost"),))) == "links[0].b"
    assert err_path(small_spec(
        sites=two,
        links=(LinkSpec("a", "b"), LinkSpec("b", "a")))) == "links[1]"


def test_fault_target_validation_lists_planned_targets():
    spec = small_spec(faults={"seed": 1, "faults": [
        {"at": 5.0, "kind": "blade_crash", "target": "blade9"}]})
    with pytest.raises(SpecError) as exc:
        plan_storage(spec)
    assert exc.value.path == "faults[0].target"
    assert "blade1" in str(exc.value)       # the inventory is in the message


def test_malformed_fault_doc_path():
    with pytest.raises(SpecError) as exc:
        plan_storage(small_spec(faults={"seed": 1, "faults": [
            {"at": 5.0, "kind": "warp_core_breach", "target": "blade0"}]}))
    assert exc.value.path == "faults"


# -- layout arithmetic ---------------------------------------------------------


def test_single_site_plan_geometry_matches_config_arithmetic():
    plan = plan_storage(small_spec())
    assert plan.kind == "system"
    sp = plan.sites[0]
    config = sp.config
    width = config.data_per_stripe + 1
    slots = config.disk_capacity // config.block_size
    stripes = int(config.disk_count * slots * 0.8) // width
    assert sp.stripe_width == width
    assert sp.stripe_count == stripes
    assert sp.capacity_bytes == stripes * config.data_per_stripe \
        * config.block_size
    assert sp.blades == ("blade0", "blade1")
    assert len(sp.disks) == 8
    assert sp.cache_blocks_per_blade == max(
        1, config.cache_bytes_per_blade // config.block_size)


def test_plan_carries_seed_and_campaign_toggles_into_configs():
    plan = plan_storage(small_spec(seed=77, observability=True,
                                   integrity=True))
    config = plan.sites[0].config
    assert config.seed == 77
    assert config.observability and config.integrity
    assert config.name == "site0"


def test_multi_site_defaults_to_full_mesh():
    plan = plan_storage(small_spec(sites=(
        SiteSpec("a"), SiteSpec("b", (0.0, 300.0)),
        SiteSpec("c", (400.0, 0.0)))))
    assert plan.kind == "geo"
    assert {lp.name for lp in plan.links} == {
        "wan:a<->b", "wan:a<->c", "wan:b<->c"}
    ab = next(lp for lp in plan.links if lp.name == "wan:a<->b")
    assert ab.distance_km == pytest.approx(300.0)


def test_fault_target_inventory_by_kind():
    single = plan_storage(small_spec())
    assert "blade0" in single.fault_targets
    assert "disk0" in single.fault_targets
    assert "cache" in single.fault_targets

    geo = plan_storage(small_spec(
        sites=(SiteSpec("a"), SiteSpec("b", (0.0, 300.0)))))
    for t in ("a", "b", "wan:a<->b", "a.blade0", "b.disk7", "a.cache"):
        assert t in geo.fault_targets

    wan = plan_storage(ScenarioSpec(
        site_backing="aggregate",
        sites=(SiteSpec("a"), SiteSpec("b", (0.0, 300.0)))))
    assert wan.kind == "wan"
    assert set(wan.fault_targets) == {"a", "b", "wan:a<->b"}
    assert wan.sites[0].config is None


# -- plan serialization --------------------------------------------------------


def test_plan_json_round_trip_identity():
    spec = small_spec(
        seed=5, observability=True,
        sites=(SiteSpec("a"), SiteSpec("b", (0.0, 800.0))),
        faults={"seed": 3, "faults": [
            {"at": 10.0, "kind": "site_loss", "target": "a",
             "duration": 60.0}]})
    plan = plan_storage(spec)
    again = Plan.from_json(plan.to_json())
    assert again.as_dict() == plan.as_dict()
    assert again.to_json() == plan.to_json()
    assert again.spec == spec


def test_stale_plan_file_rejected():
    plan = plan_storage(small_spec())
    doc = plan.as_dict()
    doc["sites"][0]["stripe_count"] += 1   # layout rules "changed"
    with pytest.raises(SpecError) as exc:
        Plan.from_json(json.dumps(doc))
    assert "stale" in str(exc.value)
    assert exc.value.path == "plan.sites"


def test_describe_mentions_layout_and_campaigns():
    text = plan_storage(small_spec(
        faults={"seed": 1, "faults": [
            {"at": 1.0, "kind": "blade_crash", "target": "blade0"}]},
        observability=True)).describe()
    assert "kind=system" in text
    assert "2 blades" in text
    assert "faults=1" in text
    assert "obs=True" in text


def test_plan_site_lookup():
    plan = plan_storage(small_spec())
    assert plan.site("site0").name == "site0"
    with pytest.raises(KeyError):
        plan.site("mars")


# -- the cache-bench planner ---------------------------------------------------


def test_cache_bench_plan_layout():
    plan = plan_cache_bench(CacheBenchSpec(blade_count=3,
                                           cache_bytes=mib(1)))
    assert plan.blades == ("blade0", "blade1", "blade2")
    assert plan.cache_blocks_per_blade == mib(1) // (64 * 1024)
    assert plan.interconnect_bandwidth == pytest.approx(
        3 * CacheBenchSpec().interconnect_per_blade)


def test_cache_bench_spec_validation():
    with pytest.raises(ValueError):
        CacheBenchSpec(blade_count=0)
    with pytest.raises(ValueError):
        CacheBenchSpec(blade_count=2, replication=3)
    with pytest.raises(SpecError) as exc:
        CacheBenchSpec.from_dict({"blades": 4})
    assert exc.value.path == "cache_bench"
