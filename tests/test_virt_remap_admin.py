"""Unit tests for page migration (remap) and automated policy admin."""

import pytest

from repro.core import AutoPolicyEngine, idle_demotion_rule, scratch_cleanup_rule
from repro.fs import CRITICAL, ParallelFileSystem, ReplicationMode
from repro.sim import Simulator
from repro.virt import (
    Allocator,
    DemandMappedDevice,
    PageMigrator,
    StoragePool,
    take_snapshot,
)

PAGE = 4096


def two_tier_allocator(fast_pages=32, slow_pages=64):
    return Allocator([
        StoragePool("fast", fast_pages * PAGE, PAGE, tier="fc"),
        StoragePool("slow", slow_pages * PAGE, PAGE, tier="legacy"),
    ])


class TestPageMigrator:
    def test_migrate_page_updates_map_and_frees_old(self):
        alloc = two_tier_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc, tier="fc")
        dmsd.write(0, PAGE)
        old_ref = dmsd.read(0, 1)[0]
        migrator = PageMigrator(alloc)
        new_ref = migrator.migrate_page(dmsd, 0, "legacy")
        assert new_ref is not None
        assert new_ref.pool == "slow"
        assert dmsd.read(0, 1)[0] == new_ref
        assert alloc.refcount(old_ref) == 0
        assert alloc.pools["fast"].used_pages == 0

    def test_unmapped_or_already_there_skipped(self):
        alloc = two_tier_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc, tier="legacy")
        migrator = PageMigrator(alloc)
        assert migrator.migrate_page(dmsd, 5, "fc") is None  # unmapped
        dmsd.write(0, PAGE)
        assert migrator.migrate_page(dmsd, 0, "legacy") is None  # same tier

    def test_snapshot_shared_pages_left_in_place(self):
        alloc = two_tier_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc, tier="fc")
        dmsd.write(0, 2 * PAGE)
        snap = take_snapshot(dmsd, "s")
        migrator = PageMigrator(alloc)
        report = migrator.migrate_device(dmsd, "legacy")
        assert report.moved_pages == 0
        assert report.skipped_shared == 2
        snap.delete()
        report = migrator.migrate_device(dmsd, "legacy")
        assert report.moved_pages == 2
        assert report.by_target_pool == {"slow": 2}

    def test_migrate_device_moves_everything_eligible(self):
        alloc = two_tier_allocator()
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc, tier="fc")
        dmsd.write(0, 6 * PAGE)
        report = PageMigrator(alloc).migrate_device(dmsd, "legacy")
        assert report.moved_pages == 6
        assert report.moved_bytes == 6 * PAGE
        assert alloc.pools["fast"].used_pages == 0
        assert alloc.pools["slow"].used_pages == 6

    def test_out_of_space_reported(self):
        alloc = Allocator([
            StoragePool("fast", 8 * PAGE, PAGE, tier="fc"),
            StoragePool("tiny", 2 * PAGE, PAGE, tier="legacy"),
        ])
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc, tier="fc")
        dmsd.write(0, 4 * PAGE)
        report = PageMigrator(alloc).migrate_device(dmsd, "legacy")
        assert report.moved_pages == 2
        assert report.skipped_no_space == 2

    def test_evacuate_pool_for_decommissioning(self):
        alloc = two_tier_allocator()
        a = DemandMappedDevice("a", 100 * PAGE, alloc, tier="legacy")
        b = DemandMappedDevice("b", 100 * PAGE, alloc, tier="legacy")
        a.write(0, 3 * PAGE)
        b.write(0, 2 * PAGE)
        report = PageMigrator(alloc).evacuate_pool("slow", [a, b])
        assert report.moved_pages == 5
        assert alloc.pools["slow"].used_pages == 0
        # Now the array can actually leave the aggregate.
        from repro.virt import evacuate_pool
        assert evacuate_pool(alloc, "slow") == 0

    def test_evacuate_validation(self):
        alloc = two_tier_allocator()
        migrator = PageMigrator(alloc)
        with pytest.raises(ValueError):
            migrator.evacuate_pool("ghost", [])
        solo = Allocator([StoragePool("only", 8 * PAGE, PAGE)])
        with pytest.raises(ValueError):
            PageMigrator(solo).evacuate_pool("only", [])


class TestAutoPolicyEngine:
    def make_pfs(self):
        alloc = Allocator([StoragePool("p", 512 * PAGE, PAGE)])
        return ParallelFileSystem(alloc, [0, 1], stripe_unit=PAGE)

    def test_idle_demotion_steps_down_replication(self):
        sim = Simulator()
        pfs = self.make_pfs()
        pfs.create("/hot", policy=CRITICAL, now=0.0)
        engine = AutoPolicyEngine(sim, pfs, interval=10.0)
        engine.add_rule(idle_demotion_rule(idle_seconds=100.0))
        engine.start()
        # First pass at the idle threshold (t=100): SYNC -> ASYNC.
        sim.run(until=105.0)
        policy = pfs.open("/hot").policy
        assert policy.replication_mode is ReplicationMode.ASYNC
        assert policy.cache_priority == 0
        assert engine.automation_count() >= 1
        # Subsequent passes decay ASYNC -> NONE.
        sim.run(until=300.0)
        assert pfs.open("/hot").policy.replication_mode is ReplicationMode.NONE

    def test_recently_touched_files_untouched(self):
        sim = Simulator()
        pfs = self.make_pfs()
        pfs.create("/active", policy=CRITICAL, now=0.0)
        engine = AutoPolicyEngine(sim, pfs, interval=10.0)
        engine.add_rule(idle_demotion_rule(idle_seconds=1000.0))

        def toucher():
            while sim.now < 100.0:
                pfs.write("/active", 0, PAGE, now=sim.now)
                yield sim.timeout(20.0)

        sim.process(toucher())
        engine.start()
        sim.run(until=100.0)
        assert pfs.open("/active").policy == CRITICAL
        assert engine.automation_count() == 0

    def test_scratch_sweeper_unlinks_expired(self):
        sim = Simulator()
        pfs = self.make_pfs()
        pfs.namespace.mkdir("/scratch")
        pfs.create("/scratch/old", now=0.0)
        pfs.write("/scratch/old", 0, 4 * PAGE, now=0.0)
        pfs.create("/keep", now=0.0)
        engine = AutoPolicyEngine(sim, pfs, interval=50.0)
        engine.add_rule(scratch_cleanup_rule("/scratch/", max_age=100.0))
        engine.start()
        sim.run(until=200.0)
        assert not pfs.namespace.exists("/scratch/old")
        assert pfs.namespace.exists("/keep")
        # The freed capacity returned to the pool.
        assert pfs.allocator.used_bytes == 0
        kinds = {a.kind for a in engine.actions}
        assert kinds == {"delete"}

    def test_run_once_idempotent_when_stable(self):
        sim = Simulator()
        pfs = self.make_pfs()
        pfs.create("/f", now=0.0)
        engine = AutoPolicyEngine(sim, pfs)
        engine.add_rule(idle_demotion_rule(0.0))
        first = engine.run_once()
        second = engine.run_once()
        assert second == 0 or second <= first

    def test_validation(self):
        sim = Simulator()
        pfs = self.make_pfs()
        with pytest.raises(ValueError):
            AutoPolicyEngine(sim, pfs, interval=0)
