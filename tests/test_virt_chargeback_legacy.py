"""Unit tests for charge-back accounting and legacy pool integration."""

import pytest

from repro.sim import Simulator
from repro.sim.units import GiB
from repro.virt import (
    Allocator,
    ChargebackMeter,
    DemandMappedDevice,
    LegacyArray,
    StoragePool,
    VirtualVolume,
    absorb_legacy_array,
    evacuate_pool,
)

PAGE = 1024 * 1024  # 1 MiB pages for billing realism


def make_allocator(pages=8192):
    return Allocator([StoragePool("main", pages * PAGE, PAGE)])


class TestChargeback:
    def test_bills_actual_usage_not_virtual_size(self):
        sim = Simulator()
        alloc = make_allocator()
        meter = ChargebackMeter(sim)
        dmsd = DemandMappedDevice("d", 100 * GiB, alloc, owner="physics")
        meter.register(dmsd)

        def proc():
            dmsd.write(0, GiB)  # map 1 GiB
            meter.sample()
            yield sim.timeout(3600.0)  # one hour
            meter.sample()

        sim.process(proc())
        sim.run()
        assert meter.gib_hours("physics") == pytest.approx(1.0, rel=0.01)

    def test_thick_volume_bills_full_size(self):
        sim = Simulator()
        alloc = make_allocator()
        meter = ChargebackMeter(sim)
        vol = VirtualVolume("v", 4 * GiB, alloc, owner="chem")
        meter.register(vol)

        def proc():
            meter.sample()
            yield sim.timeout(3600.0)
            meter.sample()

        sim.process(proc())
        sim.run()
        assert meter.gib_hours("chem") == pytest.approx(4.0, rel=0.01)

    def test_bill_report(self):
        sim = Simulator()
        alloc = make_allocator()
        meter = ChargebackMeter(sim)
        d1 = DemandMappedDevice("d1", 10 * GiB, alloc, owner="a")
        d2 = DemandMappedDevice("d2", 10 * GiB, alloc, owner="b")
        meter.register(d1)
        meter.register(d2)

        def proc():
            d1.write(0, 2 * GiB)
            d2.write(0, GiB)
            meter.sample()
            yield sim.timeout(3600.0)
            meter.sample()

        sim.process(proc())
        sim.run()
        bill = meter.bill(rate_per_gib_hour=0.5)
        assert bill["a"] == pytest.approx(1.0, rel=0.01)
        assert bill["b"] == pytest.approx(0.5, rel=0.01)

    def test_admin_operations_counted(self):
        sim = Simulator()
        meter = ChargebackMeter(sim)
        meter.record_admin_op("a")
        meter.record_admin_op("a")
        meter.record_admin_op("b")
        assert meter.admin_operations == {"a": 2, "b": 1}
        assert meter.total_admin_operations() == 3

    def test_deleted_devices_stop_billing(self):
        sim = Simulator()
        alloc = make_allocator()
        meter = ChargebackMeter(sim)
        dmsd = DemandMappedDevice("d", 10 * GiB, alloc, owner="a")
        meter.register(dmsd)

        def proc():
            dmsd.write(0, GiB)
            meter.sample()
            yield sim.timeout(3600.0)
            meter.sample()
            dmsd.delete()
            yield sim.timeout(3600.0)
            meter.sample()

        sim.process(proc())
        sim.run()
        assert meter.gib_hours("a") == pytest.approx(1.0, rel=0.01)


class TestLegacyIntegration:
    def test_absorb_and_allocate_by_tier(self):
        alloc = make_allocator(pages=16)
        legacy = LegacyArray("old-emc", 32 * PAGE, PAGE, vendor="EMC")
        absorb_legacy_array(alloc, legacy)
        ref = alloc.allocate(tier="legacy")
        assert ref.pool == "old-emc"
        assert legacy.profile.read_latency > 0

    def test_dmsd_can_live_on_legacy_tier(self):
        alloc = make_allocator(pages=16)
        absorb_legacy_array(alloc, LegacyArray("old", 32 * PAGE, PAGE))
        dmsd = DemandMappedDevice("archive", 100 * PAGE, alloc, tier="legacy")
        dmsd.write(0, 2 * PAGE)
        assert alloc.pools["old"].used_pages == 2
        assert alloc.pools["main"].used_pages == 0

    def test_evacuate_blocked_while_in_use(self):
        alloc = make_allocator(pages=16)
        absorb_legacy_array(alloc, LegacyArray("old", 32 * PAGE, PAGE))
        dmsd = DemandMappedDevice("d", 100 * PAGE, alloc, tier="legacy")
        dmsd.write(0, PAGE)
        assert evacuate_pool(alloc, "old") == 1
        assert "old" in alloc.pools
        dmsd.delete()
        assert evacuate_pool(alloc, "old") == 0
        assert "old" not in alloc.pools

    def test_evacuate_unknown_pool(self):
        alloc = make_allocator()
        with pytest.raises(ValueError):
            evacuate_pool(alloc, "ghost")
