"""Unit tests for blades, ports, paths, switches, and failure injection."""

import pytest

from repro.hardware import (
    BladeFailedError,
    BladeState,
    ControllerBlade,
    FailureInjector,
    NetworkPath,
    ethernet_port,
    fc_port,
    fc_switch,
    pci_x_bus,
)
from repro.sim import RngStreams, Simulator
from repro.sim.units import gbps, gib, to_gbps


class TestBlade:
    def test_defaults(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        assert blade.name == "blade0"
        assert blade.is_up
        assert len(blade.fc_ports) == 2
        assert blade.cache_bytes == gib(4)
        assert blade.fc_bandwidth == pytest.approx(2 * gbps(2))

    def test_execute_occupies_cpu(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0, cpu_cores=1)
        done = []

        def work(tag):
            yield from blade.execute(1.0)
            done.append((tag, sim.now))

        sim.process(work("a"))
        sim.process(work("b"))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]
        assert blade.ios_processed == 2

    def test_multi_core_parallelism(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0, cpu_cores=2)
        done = []

        def work():
            yield from blade.execute(1.0)
            done.append(sim.now)

        sim.process(work())
        sim.process(work())
        sim.run()
        assert done == [1.0, 1.0]

    def test_failed_blade_rejects_work(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        blade.fail()
        assert blade.state is BladeState.FAILED

        def work():
            yield from blade.execute(1.0)

        sim.process(work())
        with pytest.raises(BladeFailedError):
            sim.run()

    def test_drain_state(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        blade.drain()
        assert blade.state is BladeState.DRAINING
        blade.repair()
        assert blade.is_up

    def test_observers_notified(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        seen = []
        blade.observe(lambda b: seen.append(b.state))
        blade.fail()
        blade.repair()
        assert seen == [BladeState.FAILED, BladeState.UP]

    def test_fc_round_robin(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0, fc_port_count=2)
        ports = [blade.next_fc_port() for _ in range(4)]
        assert ports[0] is ports[2]
        assert ports[1] is ports[3]
        assert ports[0] is not ports[1]

    def test_io_cpu_cost_scales_with_bytes(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0, cpu_per_io=1e-5, cpu_per_byte=1e-9)
        assert blade.io_cpu_cost(0) == pytest.approx(1e-5)
        assert blade.io_cpu_cost(10**6) == pytest.approx(1e-5 + 1e-3)

    def test_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ControllerBlade(sim, 0, cache_bytes=0)
        with pytest.raises(ValueError):
            ControllerBlade(sim, 0, fc_port_count=0)


class TestPortsAndPaths:
    def test_port_rates(self):
        sim = Simulator()
        assert to_gbps(fc_port(sim).bandwidth) == pytest.approx(2.0)
        assert to_gbps(ethernet_port(sim).bandwidth) == pytest.approx(10.0)
        assert pci_x_bus(sim).bandwidth == pytest.approx(1.064e9)

    def test_path_bottleneck_paces_transfer(self):
        sim = Simulator()
        fast = fc_port(sim, rate_gb=2.0, name="fast")
        slow = fc_port(sim, rate_gb=1.0, name="slow")
        path = NetworkPath([fast, slow])
        assert path.bottleneck_bandwidth == slow.bandwidth

        def proc():
            yield path.transfer(gbps(1))  # 1 second at 1 Gb/s
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(1.0, rel=1e-3)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            NetworkPath([])

    def test_mixed_simulator_path_rejected(self):
        a = fc_port(Simulator(), name="a")
        b = fc_port(Simulator(), name="b")
        with pytest.raises(ValueError):
            NetworkPath([a, b])


class TestFabric:
    def test_attach_and_lookup(self):
        sim = Simulator()
        sw = fc_switch(sim)
        p = sw.attach(fc_port(sim, name="p1"))
        assert sw.port("p1") is p
        assert sw.port_count == 1
        with pytest.raises(ValueError):
            sw.attach(fc_port(sim, name="p1"))

    def test_path_through_backplane(self):
        sim = Simulator()
        sw = fc_switch(sim)
        a = fc_port(sim, name="a")
        b = fc_port(sim, name="b")
        path = sw.path(a, b)
        assert sw.backplane in path.links
        with pytest.raises(ValueError):
            sw.path(a, a)

    def test_backplane_contention(self):
        """An oversubscribed backplane becomes the bottleneck."""
        from repro.hardware import Fabric
        sim = Simulator()
        sw = Fabric(sim, backplane_bandwidth=gbps(2), name="small")
        done = []

        def flow(i):
            a = fc_port(sim, 2.0, name=f"src{i}")
            b = fc_port(sim, 2.0, name=f"dst{i}")
            yield sw.path(a, b).transfer(gbps(2) * 1.0)  # 1s alone
            done.append(sim.now)

        for i in range(2):
            sim.process(flow(i))
        sim.run()
        # Two 2 Gb/s flows share a 2 Gb/s backplane: each takes ~2s.
        assert all(t == pytest.approx(2.0, rel=0.01) for t in done)


class TestFailureInjector:
    def test_scheduled_fail_and_repair(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        inj = FailureInjector(sim)
        inj.fail_at(blade, 5.0)
        inj.repair_at(blade, 9.0)
        states = []

        def watcher():
            yield sim.timeout(6.0)
            states.append(blade.state)
            yield sim.timeout(4.0)
            states.append(blade.state)

        sim.process(watcher())
        sim.run()
        assert states == [BladeState.FAILED, BladeState.UP]
        assert inj.failures_injected() == 1
        assert [ev.kind for ev in inj.log] == ["fail", "repair"]

    def test_past_schedule_rejected(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        inj = FailureInjector(sim)

        def proc():
            yield sim.timeout(10.0)

        sim.process(proc())
        sim.run()
        with pytest.raises(ValueError):
            inj.fail_at(blade, 5.0)
        with pytest.raises(ValueError):
            inj.repair_at(blade, 5.0)

    def test_stochastic_lifecycle_alternates(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        inj = FailureInjector(sim)
        rng = RngStreams(1).fresh("failures")
        with pytest.warns(DeprecationWarning):
            inj.run_lifecycle(blade, rng, mtbf=10.0, mttr=1.0, horizon=200.0)
        sim.run()
        kinds = [ev.kind for ev in inj.log]
        assert kinds[::2] == ["fail"] * len(kinds[::2])
        assert kinds[1::2] == ["repair"] * len(kinds[1::2])
        assert inj.failures_injected() >= 5

    def test_lifecycle_deprecation_names_the_replacement(self):
        # The warning must point migrators at the FaultPlan/FaultInjector
        # path, not just say "deprecated".
        sim = Simulator()
        inj = FailureInjector(sim)
        rng = RngStreams(1).fresh("failures")
        with pytest.warns(DeprecationWarning, match=r"FaultPlan\.random"):
            inj.run_lifecycle(ControllerBlade(sim, 0), rng,
                              mtbf=10.0, mttr=1.0, horizon=1.0)
        sim.run()

    def test_lifecycle_rejects_bad_params(self):
        sim = Simulator()
        inj = FailureInjector(sim)
        rng = RngStreams(1).fresh("x")
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            inj.run_lifecycle(ControllerBlade(sim, 0), rng, mtbf=0, mttr=1)

    def test_callbacks_invoked(self):
        sim = Simulator()
        blade = ControllerBlade(sim, 0)
        seen = []
        inj = FailureInjector(sim, on_fail=lambda c: seen.append("f"),
                              on_repair=lambda c: seen.append("r"))
        inj.fail_at(blade, 1.0)
        inj.repair_at(blade, 2.0)
        sim.run()
        assert seen == ["f", "r"]
