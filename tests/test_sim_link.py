"""Unit tests for fluid fair-share and FCFS link models."""

import pytest

from repro.sim import FairShareLink, FcfsLink, Simulator
from repro.sim.units import gbps


def test_fair_share_single_transfer_time():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)  # 100 B/s

    def proc():
        yield link.transfer(500.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == pytest.approx(5.0)


def test_fair_share_latency_added_after_drain():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0, latency=2.0)

    def proc():
        yield link.transfer(100.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == pytest.approx(3.0)


def test_fair_share_two_equal_transfers_share_bandwidth():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)
    done = []

    def proc(tag):
        yield link.transfer(100.0)
        done.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    # Each gets 50 B/s, both finish at t=2 (not t=1 and t=2).
    assert done[0][1] == pytest.approx(2.0)
    assert done[1][1] == pytest.approx(2.0)


def test_fair_share_late_joiner_slows_first():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)
    done = {}

    def first():
        yield link.transfer(100.0)
        done["first"] = sim.now

    def second():
        yield sim.timeout(0.5)
        yield link.transfer(100.0)
        done["second"] = sim.now

    sim.process(first())
    sim.process(second())
    sim.run()
    # first: 50 B alone in 0.5s, then 50 B at 50 B/s -> finishes t=1.5
    # second: shares until t=1.5 (has 50 left), then full rate -> t=2.0
    assert done["first"] == pytest.approx(1.5)
    assert done["second"] == pytest.approx(2.0)


def test_fair_share_many_flows_aggregate_capacity():
    """N concurrent flows of equal size all finish at N*size/B."""
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=1000.0)
    finish = []

    def proc():
        yield link.transfer(100.0)
        finish.append(sim.now)

    n = 10
    for _ in range(n):
        sim.process(proc())
    sim.run()
    assert all(t == pytest.approx(1.0) for t in finish)
    assert link.total_bytes == pytest.approx(1000.0)


def test_fair_share_zero_byte_transfer():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=10.0, latency=1.0)

    def proc():
        yield link.transfer(0.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == pytest.approx(1.0)


def test_fair_share_negative_bytes_rejected():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=10.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)


def test_fair_share_rejects_bad_bandwidth():
    sim = Simulator()
    with pytest.raises(ValueError):
        FairShareLink(sim, bandwidth=0.0)
    with pytest.raises(ValueError):
        FairShareLink(sim, bandwidth=10.0, latency=-1.0)


def test_fair_share_utilization_tracks_busy_time():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)

    def proc():
        yield link.transfer(100.0)  # busy t in [0, 1]
        yield sim.timeout(1.0)      # idle t in [1, 2]
        yield link.transfer(100.0)  # busy t in [2, 3]

    sim.process(proc())
    sim.run()
    assert link.mean_utilization() == pytest.approx(2.0 / 3.0)


def test_fcfs_link_serializes_transfers():
    sim = Simulator()
    link = FcfsLink(sim, bandwidth=100.0)
    done = {}

    def proc(tag):
        yield link.transfer(100.0)
        done[tag] = sim.now

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(2.0)


def test_fcfs_link_latency_pipelines():
    """Propagation latency does not hold the link busy."""
    sim = Simulator()
    link = FcfsLink(sim, bandwidth=100.0, latency=5.0)
    done = {}

    def proc(tag):
        yield link.transfer(100.0)
        done[tag] = sim.now

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert done["a"] == pytest.approx(6.0)
    assert done["b"] == pytest.approx(7.0)


def test_gbps_link_moves_a_gigabyte_in_eight_seconds():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=gbps(1))

    def proc():
        yield link.transfer(1e9)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == pytest.approx(8.0)


def test_fair_share_total_bytes_accounting():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=50.0)

    def proc(n):
        yield link.transfer(n)

    sim.process(proc(30.0))
    sim.process(proc(70.0))
    sim.run()
    assert link.total_bytes == pytest.approx(100.0)
