"""End-to-end scrub + repair escalation against a full system.

The compound-fault case here is the acceptance scenario: bitrot found by
the scrub while the blade holding the cached replica is crashed must
fall through to parity reconstruction, with the stripe's I/O accounted
exactly (each surviving member read once, the corrupt chunk rewritten
once).
"""

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.sim.units import mib


def make_system(sim, **kwargs):
    cfg = SystemConfig(blade_count=4, disk_count=16,
                       disk_capacity=mib(64), seed=7, integrity=True,
                       **kwargs)
    system = NetStorageSystem(sim, cfg)
    system.start()
    system.create("/data/file")
    sim.run(until=system.write("/data/file", 0, mib(2)))
    # Run to idle: the write ack is replication-safe, not on-disk; the
    # background flusher destages the tail of the burst once quiesced.
    sim.run()
    sim.run(until=system.cache.drain_dirty())
    return system


def test_scrub_requires_integrity():
    sim = Simulator()
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(64), seed=7))
    system.start()
    with pytest.raises(RuntimeError):
        system.start_scrub()
    with pytest.raises(RuntimeError):
        system.inject_at_rest_corruption(0)


def test_injection_targets_only_stamped_data():
    sim = Simulator()
    cfg = SystemConfig(blade_count=4, disk_count=16,
                       disk_capacity=mib(64), seed=7, integrity=True)
    system = NetStorageSystem(sim, cfg)
    system.start()
    # Nothing written yet: no stamped chunks, nothing to corrupt.
    assert system.inject_at_rest_corruption(0) == 0


def test_scrub_detects_and_repairs_at_rest_corruption():
    sim = Simulator()
    system = make_system(sim)
    injected = sum(system.inject_at_rest_corruption(i, "bitrot")
                   for i in range(len(system.pool.disks)))
    assert injected > 0
    system.start_scrub(passes=1)
    sim.run()
    s = system.integrity.summary()
    assert s["detected"] == s["injected"] == injected
    assert s["repaired"] == injected
    assert s["unrepairable"] == 0 and s["outstanding"] == 0
    scrubber = system.scrubber
    assert scrubber.passes_completed == 1
    assert scrubber.misses_found == injected
    assert scrubber.repairs_failed == 0


def test_bitrot_with_crashed_replica_blade_falls_to_parity():
    sim = Simulator()
    system = make_system(sim)
    pool = system.pool
    chunk = pool.chunk_size
    k = pool.data_per_stripe

    # Find a *data* chunk that is stamped on disk and still resident in
    # some blade's cache (so the cache-replica tier would win if we left
    # those blades alive), then rot exactly that chunk.
    target = None
    for disk_index in range(len(pool.disks)):
        disk = pool.disks[disk_index]
        for stripe in pool.stripes_on_disk(disk_index):
            members = pool.stripe_members(stripe)
            member = members.index(disk_index)
            if member >= k:
                continue  # parity chunk: no cached logical block
            addr = pool.chunk_slot(stripe, disk_index)
            if not system.integrity.stamped_overlap(disk.name, addr,
                                                    chunk):
                continue
            key = system._offset_to_key.get(
                (stripe * k + member) * system.config.block_size)
            entry = system.cache.directory.entry(key) \
                if key is not None else None
            if entry is not None and entry.holders():
                target = (disk_index, stripe, member, addr, key, entry)
                break
        if target is not None:
            break
    assert target is not None, "no cached data chunk to corrupt"
    disk_index, stripe, member, addr, key, entry = target
    assert system.integrity.corrupt(pool.disks[disk_index].name, addr,
                                    chunk, "bitrot")

    # Crash every blade holding the replica: tier 1 is now structurally
    # unavailable and the chain must reconstruct from parity.
    for holder in sorted(entry.holders()):
        system.cluster.blades[holder].fail()

    members = pool.stripe_members(stripe)
    before = {d: (pool.disks[d].ops, pool.disks[d].bytes_moved)
              for d in range(len(pool.disks))}
    system.start_scrub(passes=1)
    sim.run()

    chain = system.repair_chain
    assert chain.repaired_by("raid_parity") == 1
    assert chain.repaired_by("cache_replica") == 0
    assert chain.metrics.counter("tier.cache_replica.attempts").value == 0
    s = system.integrity.summary()
    assert s["detected"] == s["injected"] == 1
    assert s["repaired"] == 1 and s["unrepairable"] == 0

    # Exact stripe accounting on top of the scrub's own walk (one read
    # per live chunk): every surviving stripe member was read exactly one
    # extra chunk for the reconstruction, the corrupt disk wrote exactly
    # the rebuilt chunk, and bystander disks saw scrub reads only.
    def scrub_chunks(d):
        return len(pool.stripes_on_disk(d))

    for d in range(len(pool.disks)):
        ops0, bytes0 = before[d]
        dops = pool.disks[d].ops - ops0
        dbytes = pool.disks[d].bytes_moved - bytes0
        if d == disk_index:
            # Scrub reads (the corrupt one included) + the repair write.
            assert dops == scrub_chunks(d) + 1
            assert dbytes == (scrub_chunks(d) + 1) * chunk
        elif d in members:
            assert dops == scrub_chunks(d) + 1
            assert dbytes == (scrub_chunks(d) + 1) * chunk
        else:
            assert dops == scrub_chunks(d)
            assert dbytes == scrub_chunks(d) * chunk


def test_scrub_miss_and_repair_reach_the_event_log():
    # The scrub/repair narration must survive observability being on —
    # the event-log's positional ``kind`` is the event kind, so fault
    # kinds ride as the ``fault_kind`` attribute.
    sim = Simulator()
    system = make_system(sim, observability=True)
    injected = system.inject_at_rest_corruption(3, "bitrot")
    assert injected > 0
    system.start_scrub(passes=1)
    sim.run()
    assert system.integrity.summary()["repaired"] == injected
    log = sim.obs.log
    misses = log.records(kind="verification_miss")
    assert len(misses) == injected
    assert all(dict(r.attrs)["fault_kind"] == "bitrot" for r in misses)
    repaired = log.records(kind="repaired")
    assert len(repaired) == injected
    assert {dict(r.attrs)["tier"] for r in repaired} <= {
        "cache_replica", "raid_parity", "geo_replica"}
    assert log.records(kind="pass_completed")


def test_double_corruption_in_stripe_is_unrepairable_single_site():
    # Two corrupt chunks in one stripe exceed single parity; with no geo
    # tier wired, the chain must account the miss as unrepairable rather
    # than fabricate data.
    sim = Simulator()
    system = make_system(sim)
    pool = system.pool
    # Corrupt two members of the same stripe directly on the ledger.
    stripe = next(s for s in range(pool.stripe_count)
                  if any(pool.chunk_slot(s, d) in
                         system.integrity._stamps.get(pool.disks[d].name,
                                                      {})
                         for d in pool.stripe_members(s)))
    members = pool.stripe_members(stripe)
    hit = []
    for d in members:
        if system.integrity.corrupt(pool.disks[d].name,
                                    pool.chunk_slot(stripe, d),
                                    pool.chunk_size, "bitrot"):
            hit.append(d)
        if len(hit) == 2:
            break
    assert len(hit) == 2
    system.start_scrub(passes=1)
    sim.run()
    s = system.integrity.summary()
    assert s["detected"] == 2
    # Parity can absorb at most one erasure: at least one of the two
    # chunks cannot be reconstructed locally.
    assert s["unrepairable"] >= 1
    assert system.scrubber.repairs_failed == s["unrepairable"]


def test_scrub_skips_failed_disks():
    sim = Simulator()
    system = make_system(sim)
    pool = system.pool
    system.inject_at_rest_corruption(3, "bitrot")
    pool.disks[5].fail()
    pool.failed.add(5)
    before = pool.disks[5].ops
    system.start_scrub(passes=1)
    sim.run()
    assert pool.disks[5].ops == before  # rebuild territory, not scrub's
    assert system.integrity.summary()["outstanding"] == 0
