"""Unit tests for snapshot-delta shipping replication."""

import pytest

from repro.geo import (
    Site,
    SnapshotShippingReplicator,
    WanNetwork,
    snapshot_delta_pages,
)
from repro.sim import Simulator
from repro.sim.units import gbps, mib
from repro.virt import Allocator, DemandMappedDevice, StoragePool, take_snapshot

PAGE = mib(1)


def make_env(sim, period=60.0):
    net = WanNetwork(sim)
    a = net.add_site(Site(sim, "a", (0.0, 0.0)))
    b = net.add_site(Site(sim, "b", (0.0, 800.0)))
    net.connect(a, b, bandwidth=gbps(2.5))
    alloc = Allocator([StoragePool("p", 4096 * PAGE, PAGE)])
    dmsd = DemandMappedDevice("vol", 2048 * PAGE, alloc)
    ship = SnapshotShippingReplicator(sim, dmsd, net, a, b, period=period)
    return net, dmsd, ship


class TestDeltaComputation:
    def test_first_delta_is_full_mapped_set(self):
        sim = Simulator()
        _net, dmsd, _ship = make_env(sim)
        dmsd.write(0, 5 * PAGE)
        snap = take_snapshot(dmsd, "s")
        assert snapshot_delta_pages(None, snap) == 5

    def test_unchanged_pages_excluded(self):
        sim = Simulator()
        _net, dmsd, _ship = make_env(sim)
        dmsd.write(0, 5 * PAGE)
        old = take_snapshot(dmsd, "old")
        dmsd.write(0, PAGE)          # COW: one page changes
        dmsd.write(10 * PAGE, PAGE)  # one new page
        new = take_snapshot(dmsd, "new")
        assert snapshot_delta_pages(old, new) == 2


class TestShipping:
    def test_ships_only_deltas(self):
        sim = Simulator()
        _net, dmsd, ship = make_env(sim)

        def scenario():
            dmsd.write(0, 8 * PAGE)
            yield from ship.ship_now()
            first = ship.bytes_shipped
            dmsd.write(0, PAGE)  # change one page
            yield from ship.ship_now()
            return first, ship.bytes_shipped - first

        p = sim.process(scenario())
        sim.run(until=p)
        first, second = p.value
        assert first == 8 * PAGE
        assert second == PAGE

    def test_periodic_cycles_and_rpo(self):
        sim = Simulator()
        _net, dmsd, ship = make_env(sim, period=30.0)
        dmsd.write(0, 4 * PAGE)
        ship.start()
        assert ship.rpo_at(10.0) == 10.0  # nothing shipped yet
        sim.run(until=200.0)
        assert ship.cycles >= 5
        rpo = ship.rpo_at(sim.now)
        assert 0 < rpo < 2 * 30.0 + 1.0  # bounded by period + ship time

    def test_idle_cycles_ship_nothing(self):
        sim = Simulator()
        _net, dmsd, ship = make_env(sim, period=10.0)
        dmsd.write(0, 2 * PAGE)
        ship.start()
        sim.run(until=100.0)
        # Only the first cycle had a delta.
        assert ship.bytes_shipped == 2 * PAGE
        assert ship.cycles >= 8

    def test_failed_target_skips_cycle(self):
        sim = Simulator()
        net, dmsd, ship = make_env(sim, period=10.0)
        dmsd.write(0, PAGE)
        net.sites["b"].fail()
        ship.start()
        sim.run(until=50.0)
        assert ship.bytes_shipped == 0
        net.sites["b"].repair()
        sim.run(until=70.0)
        assert ship.bytes_shipped == PAGE

    def test_baseline_snapshots_recycled(self):
        """Old baselines are deleted: space does not grow with cycles."""
        sim = Simulator()
        _net, dmsd, ship = make_env(sim, period=5.0)
        dmsd.write(0, 2 * PAGE)
        ship.start()

        def churn():
            for i in range(10):
                yield sim.timeout(5.0)
                dmsd.write((i % 4) * PAGE, PAGE)

        sim.process(churn())
        sim.run(until=80.0)
        # Live pages: device (<=5 mapped) + one baseline snapshot refs.
        assert dmsd.allocator.live_pages() <= 2 * dmsd.mapped_pages + 2

    def test_validation(self):
        sim = Simulator()
        net, dmsd, _ = make_env(sim)
        with pytest.raises(ValueError):
            SnapshotShippingReplicator(sim, dmsd, net, net.sites["a"],
                                       net.sites["b"], period=0)
