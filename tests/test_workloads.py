"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.sim import RngStreams, Simulator
from repro.workloads import (
    HotspotWorkload,
    SequentialStream,
    ZipfKeyGenerator,
    aggregate_throughput,
    multi_site_trace,
    run_client_fleet,
    tenant_growth_traces,
)


class TestSequentialStream:
    def test_issues_all_blocks_in_order(self):
        sim = Simulator()
        seen = []

        def issue(block):
            seen.append(block)
            return sim.timeout(0.001)

        stream = SequentialStream(sim, issue, blocks=10, block_size=4096,
                                  window=1)
        stream.run()
        sim.run()
        assert seen == list(range(10))
        assert stream.completed == 10
        assert stream.throughput() > 0

    def test_window_bounds_concurrency(self):
        sim = Simulator()
        inflight = {"now": 0, "max": 0}

        def issue(block):
            inflight["now"] += 1
            inflight["max"] = max(inflight["max"], inflight["now"])
            ev = sim.timeout(0.01)

            def dec(_e):
                inflight["now"] -= 1
            ev.add_callback(dec)
            return ev

        SequentialStream(sim, issue, blocks=20, block_size=1, window=4).run()
        sim.run()
        assert inflight["max"] == 4

    def test_latency_recorded(self):
        sim = Simulator()
        stream = SequentialStream(sim, lambda b: sim.timeout(0.005),
                                  blocks=5, block_size=1)
        stream.run()
        sim.run()
        assert stream.latency.mean() == pytest.approx(0.005)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SequentialStream(sim, lambda b: sim.timeout(0), blocks=0,
                             block_size=1)

    def test_fleet_and_aggregate(self):
        sim = Simulator()
        streams = run_client_fleet(
            sim, count=4,
            make_issue=lambda i: (lambda b: sim.timeout(0.002)),
            blocks_per_client=10, block_size=1000)
        sim.run()
        assert len(streams) == 4
        assert aggregate_throughput(streams) > 0
        assert aggregate_throughput([]) == 0.0


class TestZipf:
    def test_skew_concentrates_head(self):
        rng = RngStreams(1).fresh("zipf")
        gen = ZipfKeyGenerator(1000, skew=1.2, rng=rng)
        draws = gen.draw_many(5000)
        head = sum(1 for k in draws if k[1] < 10)
        assert head > len(draws) * 0.3  # top-1% of keys > 30% of traffic

    def test_zero_skew_is_uniform(self):
        rng = RngStreams(1).fresh("zipf0")
        gen = ZipfKeyGenerator(100, skew=0.0, rng=rng)
        draws = gen.draw_many(10_000)
        head = sum(1 for k in draws if k[1] < 10)
        assert abs(head / len(draws) - 0.1) < 0.03

    def test_custom_key_mapping(self):
        rng = RngStreams(1).fresh("z")
        gen = ZipfKeyGenerator(10, 1.0, rng, key_of=lambda i: f"f{i}")
        assert all(isinstance(k, str) for k in gen.draw_many(5))

    def test_validation(self):
        rng = RngStreams(1).fresh("z")
        with pytest.raises(ValueError):
            ZipfKeyGenerator(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfKeyGenerator(10, -1.0, rng)


class TestHotspotWorkload:
    def test_open_loop_traffic(self):
        sim = Simulator()
        rng = RngStreams(2).fresh("arrivals")
        gen = ZipfKeyGenerator(100, 1.0, RngStreams(2).fresh("keys"))
        wl = HotspotWorkload(sim, gen, lambda k: sim.timeout(0.001),
                             arrival_rate=500.0, duration=1.0, rng=rng)
        wl.run()
        sim.run()
        assert 300 < wl.issued < 800
        assert wl.completed == wl.issued
        assert wl.failures == 0

    def test_failures_counted(self):
        sim = Simulator()
        rng = RngStreams(2).fresh("a2")
        gen = ZipfKeyGenerator(10, 1.0, RngStreams(2).fresh("k2"))

        def issue(key):
            ev = sim.event()
            ev.fail(RuntimeError("down"))
            return ev

        wl = HotspotWorkload(sim, gen, issue, arrival_rate=100.0,
                             duration=0.2, rng=rng)
        wl.run()
        sim.run()
        assert wl.failures == wl.issued > 0

    def test_validation(self):
        sim = Simulator()
        rng = RngStreams(1).fresh("x")
        gen = ZipfKeyGenerator(10, 1.0, rng)
        with pytest.raises(ValueError):
            HotspotWorkload(sim, gen, lambda k: sim.timeout(0),
                            arrival_rate=0, duration=1, rng=rng)


class TestTraces:
    def test_tenant_growth_is_monotone_ish(self):
        rng = RngStreams(3).fresh("growth")
        traces = tenant_growth_traces(5, 24, rng)
        assert len(traces) == 5
        for series in traces.values():
            assert len(series) == 24
            assert series[-1] > series[0]  # growth dominates

    def test_growth_deterministic_per_seed(self):
        a = tenant_growth_traces(3, 10, RngStreams(7).fresh("g"))
        b = tenant_growth_traces(3, 10, RngStreams(7).fresh("g"))
        assert a == b

    def test_multi_site_trace_locality(self):
        rng = RngStreams(4).fresh("trace")
        trace = multi_site_trace(["a", "b", "c"], files=20,
                                 blocks_per_file=64, accesses=2000,
                                 rng=rng, locality=0.9)
        assert len(trace) == 2000
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert all(0 <= r.block < 64 for r in trace)
        sites = {r.site for r in trace}
        assert sites <= {"a", "b", "c"}

    def test_trace_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            multi_site_trace(["a"], 5, 10, 10, rng)
        with pytest.raises(ValueError):
            multi_site_trace(["a", "b"], 5, 10, 10, rng, locality=1.5)
        with pytest.raises(ValueError):
            tenant_growth_traces(0, 5, rng)
