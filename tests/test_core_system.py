"""Integration tests for the assembled NetStorageSystem."""

import pytest

from repro import NetStorageSystem, Simulator, SystemConfig
from repro.core import format_table
from repro.fs import CRITICAL, FilePolicy
from repro.sim.units import kib, mib


def make_system(sim, **overrides):
    defaults = dict(blade_count=4, disk_count=12, replication=2,
                    disk_capacity=mib(64), cache_bytes_per_blade=mib(8))
    defaults.update(overrides)
    system = NetStorageSystem(sim, SystemConfig(**defaults))
    system.start()
    return system


class TestConfig:
    def test_defaults_valid(self):
        SystemConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(blade_count=0)
        with pytest.raises(ValueError):
            SystemConfig(blade_count=2, replication=3)
        with pytest.raises(ValueError):
            SystemConfig(disk_count=3, data_per_stripe=4)
        with pytest.raises(ValueError):
            SystemConfig(block_size=0)


class TestDataPath:
    def test_write_then_read_roundtrip(self):
        sim = Simulator()
        system = make_system(sim)
        system.create("/data/run1.h5")

        def client():
            yield system.write("/data/run1.h5", 0, mib(1))
            got = yield system.read("/data/run1.h5", 0, mib(1))
            return got

        p = sim.process(client())
        sim.run(until=p)
        assert p.value == mib(1)
        # Written blocks were re-read from cache, not disk.
        assert system.cache.metrics.counter("read.local_hit").value + \
            system.cache.metrics.counter("read.remote_hit").value > 0

    def test_write_absorbs_with_replication(self):
        sim = Simulator()
        system = make_system(sim, replication=3)
        system.create("/f", policy=FilePolicy(write_fault_tolerance=3))

        def client():
            yield system.write("/f", 0, kib(256))

        p = sim.process(client())
        sim.run(until=p)
        placed = system.cache.metrics.counter("write.replicas_placed").value
        assert placed == 2 * 4  # 4 blocks, 2 extra copies each

    def test_read_of_missing_file_fails(self):
        sim = Simulator()
        system = make_system(sim)
        caught = []

        def client():
            try:
                yield system.read("/ghost", 0, kib(64))
            except Exception:
                caught.append(True)

        sim.process(client())
        sim.run()
        assert caught == [True]

    def test_policy_clamped_by_admin_limits(self):
        from repro.fs import PolicyLimits
        sim = Simulator()
        system = make_system(
            sim, policy_limits=PolicyLimits(max_write_fault_tolerance=2))
        inode = system.create("/f", policy=CRITICAL)
        assert inode.policy.write_fault_tolerance == 2

    def test_io_spreads_across_blades(self):
        sim = Simulator()
        system = make_system(sim)
        system.create("/big")

        def client():
            yield system.write("/big", 0, mib(2))  # 32 blocks over 4 blades

        p = sim.process(client())
        sim.run(until=p)
        assert system.cluster.balancer.imbalance() < 1.3

    def test_empty_io_completes(self):
        sim = Simulator()
        system = make_system(sim)
        system.create("/f")

        def client():
            got = yield system.read("/f", 0, 0)
            return got

        p = sim.process(client())
        sim.run(until=p)
        assert p.value == 0


class TestFailureIntegration:
    def test_blade_failure_routes_around_and_keeps_data(self):
        sim = Simulator()
        system = make_system(sim, replication=2)
        system.create("/f")

        def client():
            yield system.write("/f", 0, mib(1))
            system.cluster.blade(0).fail()
            # Detection delay passes; cache salvage runs.
            yield sim.timeout(1.0)
            got = yield system.read("/f", 0, mib(1))
            return got

        p = sim.process(client())
        sim.run(until=p)
        assert p.value == mib(1)
        assert system.cache.lost_dirty_blocks == []

    def test_unreplicated_writes_lost_on_blade_failure(self):
        sim = Simulator()
        system = make_system(sim, replication=1)
        system.create("/f", policy=FilePolicy(write_fault_tolerance=1))

        def client():
            yield system.write("/f", 0, mib(1))
            # Kill every blade that owns dirty data before destage.
            system.cluster.blade(0).fail()
            yield sim.timeout(1.0)

        sim.process(client())
        sim.run(until=5.0)
        report = system.report()
        # blade 0 held some of the 16 dirty blocks; those are gone.
        assert report["cache.lost_dirty_blocks"] > 0

    def test_disk_failure_triggers_distributed_rebuild(self):
        sim = Simulator()
        system = make_system(sim)
        job = system.fail_disk_and_rebuild(0)
        sim.run(until=300.0)
        assert job.done
        assert job.progress == 1.0

    def test_report_snapshot_keys(self):
        sim = Simulator()
        system = make_system(sim)
        report = system.report()
        for key in ("cluster.availability", "cluster.live_blades",
                    "balancer.imbalance", "pfs.mapped_bytes"):
            assert key in report


class TestReportFormatting:
    def test_format_table(self):
        table = format_table(["blades", "Gb/s"], [[1, 4.05], [4, 8.48]],
                             title="E1")
        assert "blades" in table
        assert "8.48" in table
        assert table.startswith("E1")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
