"""Unit tests for the namespace, policies, and policy limits."""

import pytest

from repro.fs import (
    CRITICAL,
    FilePolicy,
    FsError,
    Namespace,
    PolicyLimits,
    ReplicationMode,
    split_path,
)
from repro.raid import RaidLevel


class TestSplitPath:
    def test_normalizes(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("/a//b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(FsError):
            split_path("a/b")


class TestNamespace:
    def test_mkdir_create_lookup(self):
        ns = Namespace()
        ns.mkdir("/projects")
        ns.create("/projects/data.h5")
        node = ns.lookup("/projects/data.h5")
        assert node.is_file
        assert ns.lookup("/projects").is_dir

    def test_mkdirs_intermediate(self):
        ns = Namespace()
        ns.mkdirs("/a/b/c")
        assert ns.exists("/a/b/c")
        ns.mkdirs("/a/b/c")  # idempotent

    def test_create_requires_parent(self):
        ns = Namespace()
        with pytest.raises(FsError):
            ns.create("/missing/file")

    def test_duplicate_rejected(self):
        ns = Namespace()
        ns.create("/f")
        with pytest.raises(FsError):
            ns.create("/f")
        with pytest.raises(FsError):
            ns.mkdir("/f")

    def test_unlink(self):
        ns = Namespace()
        ns.create("/f")
        ns.unlink("/f")
        assert not ns.exists("/f")
        with pytest.raises(FsError):
            ns.unlink("/f")

    def test_unlink_nonempty_dir_rejected(self):
        ns = Namespace()
        ns.mkdir("/d")
        ns.create("/d/f")
        with pytest.raises(FsError):
            ns.unlink("/d")
        ns.unlink("/d/f")
        ns.unlink("/d")

    def test_rename(self):
        ns = Namespace()
        ns.mkdir("/a")
        ns.mkdir("/b")
        ns.create("/a/f")
        ns.rename("/a/f", "/b/g")
        assert ns.exists("/b/g")
        assert not ns.exists("/a/f")
        ns.create("/a/f2")
        with pytest.raises(FsError):
            ns.rename("/a/f2", "/b/g")  # destination exists

    def test_listdir_and_walk(self):
        ns = Namespace()
        ns.mkdirs("/x/y")
        ns.create("/x/f1")
        ns.create("/x/y/f2")
        assert ns.listdir("/x") == ["f1", "y"]
        files = [p for p, _ in ns.walk_files()]
        assert files == ["/x/f1", "/x/y/f2"]

    def test_file_is_not_a_directory(self):
        ns = Namespace()
        ns.create("/f")
        with pytest.raises(FsError):
            ns.create("/f/child")
        with pytest.raises(FsError):
            ns.listdir("/f")


class TestFilePolicy:
    def test_defaults_valid(self):
        p = FilePolicy()
        assert p.replication_mode is ReplicationMode.NONE
        assert p.write_fault_tolerance == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FilePolicy(cache_priority=10)
        with pytest.raises(ValueError):
            FilePolicy(write_fault_tolerance=0)
        with pytest.raises(ValueError):
            FilePolicy(replication_sites=-1)
        with pytest.raises(ValueError):
            FilePolicy(min_distance_km=-5)
        with pytest.raises(ValueError):
            FilePolicy(replication_sites=2)  # mode NONE

    def test_presets(self):
        assert CRITICAL.replication_mode is ReplicationMode.SYNC
        assert CRITICAL.raid_override is RaidLevel.RAID10


class TestPolicyLimits:
    def test_clamps_numeric_fields(self):
        limits = PolicyLimits(max_cache_priority=5,
                              max_write_fault_tolerance=2,
                              max_replication_sites=1)
        effective = limits.clamp(CRITICAL)
        assert effective.cache_priority == 5
        assert effective.write_fault_tolerance == 2
        assert effective.replication_sites == 1

    def test_sync_downgraded_when_disallowed(self):
        limits = PolicyLimits(allow_sync_replication=False)
        effective = limits.clamp(CRITICAL)
        assert effective.replication_mode is ReplicationMode.ASYNC

    def test_raid_override_filtered(self):
        limits = PolicyLimits(allowed_raid_levels=frozenset({RaidLevel.RAID5}))
        effective = limits.clamp(CRITICAL)  # asks for RAID10
        assert effective.raid_override is None
        ok = limits.clamp(FilePolicy(raid_override=RaidLevel.RAID5))
        assert ok.raid_override is RaidLevel.RAID5

    def test_within_limits_unchanged(self):
        limits = PolicyLimits()
        assert limits.clamp(CRITICAL) == CRITICAL
