"""Unit tests for the RTSP paced-streaming engine."""

import pytest

from repro.protocols import RtspSession, run_sessions
from repro.sim import FairShareLink, Simulator
from repro.sim.units import gbps, mbps, mib


def storage_path(sim, bandwidth):
    link = FairShareLink(sim, bandwidth, name="storage")
    return lambda nbytes: link.transfer(nbytes)


def test_fast_storage_plays_smoothly():
    sim = Simulator()
    session = RtspSession(sim, storage_path(sim, gbps(1)),
                          bit_rate=mbps(8) * 8, duration=20.0)
    stats = sim.run(until=session.play())
    assert stats.smooth
    assert stats.rebuffer_events == 0
    assert stats.delivered_bytes > 0
    assert stats.startup_delay < 1.0
    # Playback duration ≈ content duration (paced, not bulk).
    assert stats.duration == pytest.approx(20.0, rel=0.15)


def test_starved_storage_rebuffers():
    sim = Simulator()
    # Storage sustains only half the content bit rate.
    content_rate = 16e6  # 16 Mb/s
    session = RtspSession(sim, storage_path(sim, content_rate / 8 / 2),
                          bit_rate=content_rate, duration=10.0)
    stats = sim.run(until=session.play())
    assert not stats.smooth
    assert stats.rebuffer_events > 0
    assert stats.rebuffer_time > 0
    assert stats.duration > 10.0  # stalls stretched the session


def test_many_sessions_until_path_saturates():
    """QoS holds while aggregate demand fits the path, then degrades."""
    def rebuffers(count):
        sim = Simulator()
        read = storage_path(sim, 100e6)  # 100 MB/s path
        sessions = run_sessions(sim, read, count,
                                bit_rate=80e6, duration=8.0)  # 10 MB/s each
        sim.run()
        return sum(s.value.rebuffer_events for s in sessions)

    assert rebuffers(6) == 0      # 60 MB/s demand: smooth
    assert rebuffers(20) > 0      # 200 MB/s demand: stalls


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        RtspSession(sim, lambda n: sim.timeout(0), bit_rate=0, duration=1)
    with pytest.raises(ValueError):
        RtspSession(sim, lambda n: sim.timeout(0), bit_rate=1, duration=1,
                    buffer_target=0)


def test_stats_fields_consistent():
    sim = Simulator()
    session = RtspSession(sim, storage_path(sim, gbps(1)),
                          bit_rate=mbps(4) * 8, duration=5.0,
                          segment_bytes=mib(1))
    stats = sim.run(until=session.play())
    assert stats.delivered_bytes % mib(1) == 0
    assert stats.rebuffer_time == 0.0
