"""FaultInjector end-to-end: determinism, recovery tracking, rebuilds.

The acceptance bar for the framework: campaigns are kernel events, so a
seeded run with a fault plan is byte-identical across kernel fast-path
configurations, and an *empty* plan reproduces the pre-framework trace
exactly.
"""

import pytest

from repro import (FaultKind, FaultPlan, NetStorageSystem, RetryPolicy,
                   Simulator, SystemConfig)
from repro.faults import FaultInjector
from repro.obs.telemetry import HealthState
from repro.sim.faults import FAULT_EXCEPTIONS
from repro.sim.units import gbps, mib


def _build(pooling: bool = True, seed: int = 11):
    sim = Simulator(pooling=pooling)
    system = NetStorageSystem(sim, SystemConfig(
        blade_count=4, disk_count=16, disk_capacity=mib(64),
        seed=seed, observability=True))
    system.start()
    system.create("/projects/results.h5")
    return sim, system


def _run_workload(sim, system, rounds: int = 8, until: float = 200.0):
    """Periodic writes+reads that tolerate injected faults (clients see
    failed I/O events, not crashes)."""
    def client():
        for _ in range(rounds):
            try:
                yield system.write("/projects/results.h5", 0, mib(1))
                yield system.read("/projects/results.h5", 0, mib(1))
            except FAULT_EXCEPTIONS:
                pass
            yield sim.timeout(20.0)

    sim.process(client())
    sim.run(until=until)


CRASH_PLAN_JSON = None  # set lazily by _crash_plan for reuse across tests


def _crash_plan() -> FaultPlan:
    return (FaultPlan()
            .add(15.0, FaultKind.BLADE_CRASH, "blade1", duration=30.0)
            .add(55.0, FaultKind.SLOW_NODE, "blade2", duration=20.0,
                 severity=4.0)
            .add(90.0, FaultKind.TRANSIENT_IO, "cache", severity=2.0))


class TestDeterminism:
    def _trace(self, pooling: bool, plan: FaultPlan | None):
        sim, system = _build(pooling=pooling)
        if plan is not None:
            system.attach_faults(plan)
        _run_workload(sim, system)
        return system.trace_json()

    def test_empty_plan_matches_unfaulted_run(self):
        # Binding + arming an empty campaign must be invisible: same
        # events, same timings, byte for byte.
        assert self._trace(True, FaultPlan()) == self._trace(True, None)

    def test_fault_campaign_identical_pooling_on_off(self):
        a = self._trace(True, _crash_plan())
        b = self._trace(False, _crash_plan())
        assert a == b

    def test_plan_survives_json_round_trip_identically(self):
        clone = FaultPlan.from_json(_crash_plan().to_json())
        assert self._trace(True, clone) == self._trace(True, _crash_plan())

    def test_timeline_is_reproducible(self):
        def timeline():
            sim, system = _build()
            inj = system.attach_faults(_crash_plan())
            _run_workload(sim, system)
            return inj.timeline

        assert timeline() == timeline()


class TestBladeRecovery:
    def test_crash_and_repair_drive_the_tracker(self):
        sim, system = _build()
        plan = FaultPlan().add(20.0, FaultKind.BLADE_CRASH, "blade1",
                               duration=30.0)
        inj = system.attach_faults(plan)
        _run_workload(sim, system)

        tr = inj.trackers["blade1"]
        assert tr.failures == 1
        assert tr.state is HealthState.UP
        assert tr.repair_times == [pytest.approx(30.0)]
        assert tr.mttr() == pytest.approx(30.0)
        # 30 s down out of 200 s of run.
        assert tr.availability() == pytest.approx(1.0 - 30.0 / 200.0)
        assert inj.mttr() == pytest.approx(30.0)
        assert inj.availability() == pytest.approx(1.0 - 30.0 / 200.0)
        # The cache was told about the rejoin (cold-cache rejoin counter).
        assert system.cache.metrics.counter(
            "failure.blade_repairs").value == 1
        assert system.cluster.blades[1].is_up

    def test_slow_node_degrades_without_downtime(self):
        sim, system = _build()
        plan = FaultPlan().add(10.0, FaultKind.SLOW_NODE, "blade2",
                               duration=40.0, severity=4.0)
        inj = system.attach_faults(plan)
        _run_workload(sim, system)
        tr = inj.trackers["blade2"]
        assert tr.failures == 0
        assert tr.availability() == 1.0  # gray failure: serving, slowly
        states = [s for _, s in tr.transitions]
        assert states == [HealthState.DEGRADED, HealthState.UP]
        assert system.cluster.blades[2].slow_factor == 1.0  # cleared

    def test_transient_io_burst_is_retried_and_absorbed(self):
        sim, system = _build()
        system.cache.retry_policy = RetryPolicy(attempts=4, base_delay=0.002)
        plan = FaultPlan().add(5.0, FaultKind.TRANSIENT_IO, "cache",
                               severity=2.0)
        system.attach_faults(plan)

        outcome = []

        def client():
            yield sim.timeout(6.0)
            # Cold range: the miss path hits the (faulted) backing store.
            got = yield system.read("/projects/results.h5", 0, mib(1))
            outcome.append(got)

        sim.process(client())
        sim.run(until=60.0)
        assert outcome == [mib(1)]  # read survived the burst
        retries = system.obs.log.records(kind="retry",
                                         component="cache.pool")
        assert len(retries) >= 1


class TestDiskRecovery:
    def test_disk_fault_starts_distributed_rebuild_to_completion(self):
        sim, system = _build()
        plan = FaultPlan().add(10.0, FaultKind.DISK_FAIL, "disk3")
        inj = system.attach_faults(plan)
        _run_workload(sim, system, until=3600.0)

        assert system.pool.failed == {3}
        tr = inj.trackers["disk3"]
        assert tr.failures == 1
        # Declustering keeps serving through reconstruction: the outage
        # closes the instant the rebuild is running, so the FAILED window
        # is zero-length and the RECOVERING window measures rebuild time.
        states = [s for _, s in tr.transitions]
        assert states == [HealthState.FAILED, HealthState.RECOVERING,
                          HealthState.UP]
        assert tr.repair_times == [pytest.approx(0.0)]
        recovering_at = tr.transitions[1][0]
        up_at = tr.transitions[2][0]
        assert up_at > recovering_at  # the rebuild took real time

    def test_blade_crash_mid_rebuild_does_not_corrupt_the_job(self):
        # A controller dying during a distributed rebuild interrupts its
        # worker; the region returns to the queue and a survivor finishes
        # it.  The job's stripe accounting must stay exact — every stripe
        # rebuilt exactly once, none lost, none double-counted.
        sim, system = _build()
        plan = (FaultPlan()
                .add(10.0, FaultKind.DISK_FAIL, "disk3")
                .add(11.0, FaultKind.BLADE_CRASH, "blade0", duration=50.0))
        inj = system.attach_faults(plan)
        _run_workload(sim, system, until=3600.0)

        job = system.cluster.rebuild_coordinator._job
        assert job is not None and job.done
        assert job.completed == job.total
        assert job.pending == []
        assert system.cluster.rebuild_coordinator.respawned >= 1
        assert inj.trackers["disk3"].state is HealthState.UP
        # Reads through the rebuilt range still complete.
        outcome = []

        def reader():
            got = yield system.read("/projects/results.h5", 0, mib(1))
            outcome.append(got)

        sim.process(reader())
        sim.run(until=sim.now + 60.0)
        assert outcome == [mib(1)]

    def test_second_fault_on_dead_disk_is_a_no_op(self):
        sim, system = _build()
        plan = (FaultPlan()
                .add(10.0, FaultKind.DISK_FAIL, "disk3")
                .add(12.0, FaultKind.DISK_FAIL, "disk3"))
        inj = system.attach_faults(plan)
        _run_workload(sim, system, until=3600.0)
        assert inj.trackers["disk3"].failures == 1
        assert system.pool.failed == {3}


class TestWanFaults:
    def test_link_flap_reroutes_and_recovers(self):
        from repro.geo import Site, WanNetwork
        sim = Simulator()
        net = WanNetwork(sim)
        a = net.add_site(Site(sim, "a", (0.0, 0.0)))
        b = net.add_site(Site(sim, "b", (0.0, 800.0)))
        c = net.add_site(Site(sim, "c", (600.0, 400.0)))
        direct = net.connect(a, b, bandwidth=gbps(2.5))
        net.connect(a, c, bandwidth=gbps(1.0))
        net.connect(c, b, bandwidth=gbps(1.0))

        inj = FaultInjector(sim)
        inj.bind_link(direct)
        inj.arm(FaultPlan().add(1.0, FaultKind.LINK_FLAP, direct.name,
                                duration=5.0))

        sim.run(until=2.0)
        assert direct.failed
        assert len(net.route(a, b)) == 2  # detours a -> c -> b
        sim.run(until=10.0)
        assert not direct.failed
        assert net.route(a, b) == [direct]
        assert inj.trackers[direct.name].repair_times == [pytest.approx(5.0)]


class TestArming:
    def test_strict_arm_rejects_unbound_targets(self):
        sim, system = _build()
        inj = system.attach_faults()
        with pytest.raises(KeyError):
            inj.arm(FaultPlan().add(1.0, FaultKind.BLADE_CRASH, "nonesuch"))

    def test_lenient_arm_skips_and_counts(self):
        sim, system = _build()
        inj = system.attach_faults()
        inj.arm(FaultPlan().add(1.0, FaultKind.BLADE_CRASH, "nonesuch"),
                strict=False)
        assert inj.skipped == 1
        sim.run(until=5.0)  # nothing explodes at t=1
        assert inj.applied == 0

    def test_summary_counts_campaign(self):
        sim, system = _build()
        inj = system.attach_faults(_crash_plan())
        _run_workload(sim, system)
        s = inj.summary()
        assert s["faults_armed"] == 3.0
        assert s["faults_applied"] == 3.0
        assert s["faults_cleared"] == 2.0  # transient burst has no clear
        assert s["failures"] == 1.0  # only the blade crash was an outage
        assert 0.0 < s["worst_availability"] < 1.0

    def test_trackers_join_the_management_plane(self):
        sim, system = _build()
        system.attach_faults(FaultPlan().add(15.0, FaultKind.BLADE_CRASH,
                                             "blade1", duration=30.0))
        _run_workload(sim, system, until=100.0)
        report = system.telemetry_report()
        assert "faults.injector" in report
        assert "blade1.recovery" in report
