"""Smoke tests: every shipped example runs to completion.

Examples are the quickstart documentation; bitrot there is worse than a
failing unit test.  Each runs in a subprocess with output captured, and a
couple of load-bearing lines are asserted.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "checkpoint write acked" in out
    assert "system report" in out


def test_supercomputer_feed():
    out = run_example("supercomputer_feed.py")
    assert "Figure 1" in out
    assert "dual PCI-X bridge" in out


def test_national_lab_grid():
    out = run_example("national_lab_grid.py")
    assert "replica map:" in out
    assert "disaster recovery" in out


def test_multi_tenant_lab():
    out = run_example("multi_tenant_lab.py")
    assert "monthly charge-back" in out
    assert "DENIED" in out


def test_disaster_recovery():
    out = run_example("disaster_recovery.py")
    assert "rebuild complete" in out
    assert "service availability over the whole run: 1.0000" in out


def test_automated_operations():
    out = run_example("automated_operations.py")
    assert "automation log" in out
    assert "0 human tickets" in out


def test_telemetry_dashboard():
    out = run_example("telemetry_dashboard.py")
    assert "time series at t=300.000000s" in out
    assert "kernel profile:" in out
    assert '"kind":"slo.burn_rate"' in out
    assert 'netstorage_slo_alerts_active{slo="blades-up"} 2' in out


def test_megascale_site():
    out = run_example("megascale_site.py")
    assert "2,500,000 modeled clients" in out
    assert "telemetry dashboard" in out
    assert "identical — the calendar queue changed the wall clock" in out


@pytest.mark.parametrize("name", [p.name for p in EXAMPLES.glob("*.py")])
def test_every_example_has_a_smoke_test(name):
    covered = {"quickstart.py", "supercomputer_feed.py",
               "national_lab_grid.py", "multi_tenant_lab.py",
               "disaster_recovery.py", "automated_operations.py",
               "telemetry_dashboard.py", "megascale_site.py"}
    assert name in covered, f"example {name} lacks a smoke test"
